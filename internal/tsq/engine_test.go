package tsq

import (
	"encoding/json"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// queryRelTol is the acceptance bar: per-app energy from the query
// engine must match a whole-trace batch run restricted to the window to
// one part in 1e6.
const queryRelTol = 1e-6

func relClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= queryRelTol*scale+1e-12
}

// writeSegmentDir materialises a fixed-seed synthetic fleet as METR-3
// segment files, splitting each device's stream across two segments to
// exercise cross-segment replay order. Returns the directory and the
// in-memory traces (the reference the query results are held against).
func writeSegmentDir(t testing.TB, users, days int) (string, []*trace.DeviceTrace) {
	t.Helper()
	dir := t.TempDir()
	traces := writeSegmentsInto(t, dir, users, days)
	return dir, traces
}

func writeSegmentsInto(t testing.TB, dir string, users, days int) []*trace.DeviceTrace {
	t.Helper()
	cfg := synthgen.Small(users, days)
	traces := synthgen.GenerateInMemory(cfg)
	for _, dt := range traces {
		half := len(dt.Records) / 2
		writeSegment(t, filepath.Join(dir, dt.Device+"-0000.metr3"), dt.Device, dt.Start, dt.Records[:half])
		writeSegment(t, filepath.Join(dir, dt.Device+"-0001.metr3"), dt.Device, dt.Records[half].TS, dt.Records[half:])
	}
	return traces
}

func writeSegment(t testing.TB, path, device string, start trace.Timestamp, recs []trace.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewColumnWriter(f, device, start)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// restrictedByApp is the reference computation: per device, feed only
// the records in [from, to) (and, if apps is non-empty, only records an
// app-filtered scan would keep) to a fresh accumulator — the
// "whole-trace batch run restricted to that window" of the acceptance
// criterion — then merge per-app energy across the fleet.
func restrictedByApp(traces []*trace.DeviceTrace, q Query, opts energy.Options) (map[uint32]float64, float64) {
	keep := map[uint32]bool{}
	for _, a := range q.Apps {
		keep[a] = true
	}
	byApp := map[uint32]float64{}
	var total float64
	for _, dt := range traces {
		acc := analysis.NewStreamAccumulator(dt.Device, opts)
		fed := false
		for i := range dt.Records {
			r := &dt.Records[i]
			if r.TS < q.From || r.TS >= q.To {
				continue
			}
			if len(keep) > 0 && r.Type != trace.RecScreen && !keep[r.App] {
				continue
			}
			acc.Feed(r)
			fed = true
		}
		if !fed {
			continue
		}
		res := acc.Finish()
		//repolint:ordered summation into a map keyed by app is order-insensitive per key
		for app, e := range res.Ledger.ByApp {
			byApp[app] += e
		}
		total += res.Ledger.Total
	}
	return byApp, total
}

// TestQueryMatchesRestrictedBatchRun is the acceptance-criterion test:
// per-app energy from QueryDir equals the restricted batch run to 1e-6,
// for the whole span, a sub-window, and an app-filtered sub-window.
func TestQueryMatchesRestrictedBatchRun(t *testing.T) {
	dir, traces := writeSegmentDir(t, 3, 3)
	opts := energy.DefaultOptions()
	eng := Engine{Opts: opts}

	span := traceSpan(traces)
	mid := span[0] + (span[1]-span[0])/2
	cases := []struct {
		name string
		q    Query
	}{
		{"full", Query{From: span[0], To: span[1] + 1}},
		{"subwindow", Query{From: span[0] + (span[1]-span[0])/4, To: mid}},
		{"appfiltered", Query{From: span[0] + (span[1]-span[0])/4, To: mid, Apps: []uint32{0, 2}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := eng.QueryDir(dir, c.q)
			if err != nil {
				t.Fatal(err)
			}
			wantByApp, wantTotal := restrictedByApp(traces, c.q, opts)
			if !relClose(res.TotalEnergyJ, wantTotal) {
				t.Fatalf("total energy %g, want %g", res.TotalEnergyJ, wantTotal)
			}
			if len(res.Apps) != len(wantByApp) {
				t.Fatalf("got %d app rows, want %d", len(res.Apps), len(wantByApp))
			}
			for _, row := range res.Apps {
				want, ok := wantByApp[row.App]
				if !ok {
					t.Fatalf("unexpected app %d in result", row.App)
				}
				if !relClose(row.EnergyJ, want) {
					t.Fatalf("app %d energy %g, want %g", row.App, row.EnergyJ, want)
				}
			}
		})
	}
}

// TestQueryWindowedMatchesPerWindowRuns holds every rollup window to the
// restricted-run standard individually.
func TestQueryWindowedMatchesPerWindowRuns(t *testing.T) {
	dir, traces := writeSegmentDir(t, 2, 2)
	opts := energy.DefaultOptions()
	eng := Engine{Opts: opts}
	span := traceSpan(traces)

	const window = trace.Timestamp(6 * 3600 * 1e6) // 6h windows
	q := Query{From: span[0], To: span[1] + 1, Window: window}
	res, err := eng.QueryDir(dir, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) < 4 {
		t.Fatalf("only %d windows over a 2-day span", len(res.Windows))
	}
	var sum float64
	for _, w := range res.Windows {
		wq := Query{From: trace.Timestamp(w.StartUS), To: trace.Timestamp(w.EndUS)}
		_, want := restrictedByApp(traces, wq, opts)
		if !relClose(w.EnergyJ, want) {
			t.Fatalf("window %d energy %g, want %g", w.StartUS, w.EnergyJ, want)
		}
		sum += w.EnergyJ
	}
	if !relClose(sum, res.TotalEnergyJ) {
		t.Fatalf("window sum %g != total %g", sum, res.TotalEnergyJ)
	}
	// Epoch alignment.
	for _, w := range res.Windows {
		if w.StartUS%int64(window) != 0 || w.EndUS-w.StartUS != int64(window) {
			t.Fatalf("window [%d,%d) is not epoch-aligned at width %d", w.StartUS, w.EndUS, int64(window))
		}
	}
}

// TestQueryPushdownSkipsBlocks asserts the scan counter the acceptance
// criterion names: a narrow window over a multi-day fleet must prune
// blocks via the seek index.
func TestQueryPushdownSkipsBlocks(t *testing.T) {
	dir, traces := writeSegmentDir(t, 2, 4)
	eng := Engine{Opts: energy.DefaultOptions()}
	span := traceSpan(traces)

	// One hour out of four days.
	from := span[0] + (span[1]-span[0])/2
	res, err := eng.QueryDir(dir, Query{From: from, To: from + 3600*1e6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scan.BlocksTotal < 8 {
		t.Fatalf("fixture too small for a pushdown assertion: %d blocks", res.Scan.BlocksTotal)
	}
	if res.Scan.BlocksSkipped == 0 {
		t.Fatalf("no blocks skipped: %+v", res.Scan)
	}
	if res.Scan.BlocksScanned+res.Scan.BlocksSkipped != res.Scan.BlocksTotal {
		t.Fatalf("block accounting broken: %+v", res.Scan)
	}
	// Sanity: the narrow window still found records.
	if res.Records == 0 {
		t.Fatal("narrow window matched no records")
	}
}

// TestQueryTopNAndNames: top-N truncation and best-effort app naming.
func TestQueryTopNAndNames(t *testing.T) {
	dir, traces := writeSegmentDir(t, 2, 2)
	eng := Engine{Opts: energy.DefaultOptions()}
	span := traceSpan(traces)

	full, err := eng.QueryDir(dir, Query{From: span[0], To: span[1] + 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Apps) < 3 {
		t.Skipf("fixture produced only %d apps", len(full.Apps))
	}
	top, err := eng.QueryDir(dir, Query{From: span[0], To: span[1] + 1, TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Apps) != 2 {
		t.Fatalf("topn=2 returned %d rows", len(top.Apps))
	}
	for i, row := range top.Apps {
		if row.App != full.Apps[i].App || row.EnergyJ != full.Apps[i].EnergyJ {
			t.Fatalf("topn row %d diverges from full ranking", i)
		}
	}
	// Rows are energy-sorted descending.
	for i := 1; i < len(full.Apps); i++ {
		if full.Apps[i].EnergyJ > full.Apps[i-1].EnergyJ {
			t.Fatal("app rows not sorted by energy")
		}
	}
	// The whole-trace query sees the trace-start app-name records.
	named := 0
	for _, row := range full.Apps {
		if row.Name != "" {
			named++
		}
	}
	if named == 0 {
		t.Fatal("no app names resolved on a whole-trace query")
	}
}

// TestQueryDeterministic: identical queries over identical bytes give
// identical JSON — the repolint-clean determinism the tentpole demands.
func TestQueryDeterministic(t *testing.T) {
	dir, traces := writeSegmentDir(t, 2, 1)
	eng := Engine{Opts: energy.DefaultOptions()}
	span := traceSpan(traces)
	q := Query{From: span[0], To: span[1] + 1, Window: trace.Timestamp(3600 * 1e6), TopN: 5}

	a, err := eng.QueryDir(dir, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.QueryDir(dir, q)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := mustJSON(t, a), mustJSON(t, b)
	if ja != jb {
		t.Fatalf("query not deterministic:\n%s\nvs\n%s", ja, jb)
	}
}

// TestApplyRetention folds old segments into the rollup and keeps
// queries over the retained range answerable (downsampled).
func TestApplyRetention(t *testing.T) {
	dir, traces := writeSegmentDir(t, 2, 2)
	opts := energy.DefaultOptions()
	eng := Engine{Opts: opts}
	span := traceSpan(traces)
	const window = trace.Timestamp(6 * 3600 * 1e6)

	before, err := eng.QueryDir(dir, Query{From: span[0], To: span[1] + 1, Window: window})
	if err != nil {
		t.Fatal(err)
	}

	// Retain everything: every sealed segment is older than the cutoff.
	rep, err := eng.ApplyRetention(dir, span[1]+1, window)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesRemoved == 0 {
		t.Fatal("retention removed nothing")
	}
	if _, err := os.Stat(filepath.Join(dir, rollupName)); err != nil {
		t.Fatalf("rollup not written: %v", err)
	}

	after, err := eng.QueryDir(dir, Query{From: span[0], To: span[1] + 1, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Downsampled {
		t.Fatal("post-retention result not marked downsampled")
	}
	if !relClose(after.TotalEnergyJ, before.TotalEnergyJ) {
		t.Fatalf("retained total %g, want %g", after.TotalEnergyJ, before.TotalEnergyJ)
	}
	if len(after.Windows) != len(before.Windows) {
		t.Fatalf("retained windows %d, want %d", len(after.Windows), len(before.Windows))
	}
	for i := range after.Windows {
		if !relClose(after.Windows[i].EnergyJ, before.Windows[i].EnergyJ) {
			t.Fatalf("retained window %d energy %g, want %g",
				after.Windows[i].StartUS, after.Windows[i].EnergyJ, before.Windows[i].EnergyJ)
		}
	}

	// A second pass is a no-op.
	rep2, err := eng.ApplyRetention(dir, span[1]+1, window)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FilesRemoved != 0 {
		t.Fatalf("second retention pass removed %d files", rep2.FilesRemoved)
	}
}

// TestQueryDirUnsealedSegment: an in-progress segment (no footer) is
// scanned via the streaming fallback and its records are included.
func TestQueryDirUnsealedSegment(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "live-0000.metr3"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewColumnWriter(f, "live-dev", 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{Type: trace.RecAppName, TS: 10, App: 1, AppName: "com.live"},
		{Type: trace.RecProcState, TS: 20, App: 1, State: trace.StateForeground},
		{Type: trace.RecScreen, TS: 30, ScreenOn: true},
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil { // visible, but unsealed
		t.Fatal(err)
	}
	res, err := Engine{Opts: energy.DefaultOptions()}.QueryDir(dir, Query{From: 0, To: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != int64(len(recs)) {
		t.Fatalf("unsealed segment: %d records, want %d", res.Records, len(recs))
	}
	if res.Devices != 1 {
		t.Fatalf("devices = %d", res.Devices)
	}
}

func traceSpan(traces []*trace.DeviceTrace) [2]trace.Timestamp {
	span := [2]trace.Timestamp{math.MaxInt64, math.MinInt64}
	for _, dt := range traces {
		for i := range dt.Records {
			ts := dt.Records[i].TS
			if ts < span[0] {
				span[0] = ts
			}
			if ts > span[1] {
				span[1] = ts
			}
		}
	}
	return span
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mustParse is shared with the parse and fuzz tests.
func mustParse(t *testing.T, rawQuery string, now time.Time) Query {
	t.Helper()
	v, err := url.ParseQuery(rawQuery)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(v, now)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", rawQuery, err)
	}
	return q
}
