package tsq

import (
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// benchDir lazily builds one shared segment fixture (4 devices × 4 days,
// each device split over two METR-3 segments) for all query benchmarks.
var benchDir struct {
	once sync.Once
	dir  string
	span [2]trace.Timestamp
}

func benchFixture(b *testing.B) (string, [2]trace.Timestamp) {
	benchDir.once.Do(func() {
		// Process-lifetime temp dir: b.TempDir would be removed after the
		// first benchmark finishes, but the fixture is shared across all
		// query benchmarks (and rebuilt fresh in every test process).
		dir, err := os.MkdirTemp("", "tsqbench")
		if err != nil {
			b.Fatal(err)
		}
		traces := writeSegmentsInto(b, dir, 4, 4)
		benchDir.dir = dir
		benchDir.span = traceSpan(traces)
	})
	return benchDir.dir, benchDir.span
}

// BenchmarkQueryWindow is the query hot path the bench trajectory gate
// watches: an hour-windowed whole-span query over the fixture, reporting
// query_p50_ms (median per-query wall time). A regression here means the
// pushdown scan, the columnar filter, or the rollup merge got slower.
func BenchmarkQueryWindow(b *testing.B) {
	dir, span := benchFixture(b)
	eng := Engine{Opts: energy.DefaultOptions()}
	q := Query{From: span[0], To: span[1] + 1, Window: trace.Timestamp(3600 * 1e6), TopN: 10}

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := eng.QueryDir(dir, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Records == 0 {
			b.Fatal("benchmark query matched nothing")
		}
		durs = append(durs, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	b.ReportMetric(durs[len(durs)/2].Seconds()*1e3, "query_p50_ms")
}

// BenchmarkQueryPushdown measures the narrow-window case the seek index
// exists for: one hour out of four days, most blocks skipped.
func BenchmarkQueryPushdown(b *testing.B) {
	dir, span := benchFixture(b)
	eng := Engine{Opts: energy.DefaultOptions()}
	from := span[0] + (span[1]-span[0])/2
	q := Query{From: from, To: from + 3600*1e6}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.QueryDir(dir, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Scan.BlocksSkipped == 0 {
			b.Fatal("pushdown skipped nothing")
		}
	}
}
