package tsq

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// Engine executes queries over segment directories. The zero value is
// ready to use with default energy options.
type Engine struct {
	Opts energy.Options
}

// QueryDir runs q over every segment file in dir (non-recursive),
// merging the directory's retention rollup (rollup.json) when its
// windows intersect the query range. Files are grouped by device and
// scanned in start-timestamp order, so multi-segment devices replay as
// one stream per window.
func (e Engine) QueryDir(dir string, q Query) (*Result, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if strings.HasPrefix(name, ".") || strings.HasSuffix(name, ".json") ||
			strings.HasSuffix(name, ".tmp") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	res, err := e.QueryFiles(paths, q)
	if err != nil {
		return nil, err
	}
	if err := mergeRollup(res, dir, q); err != nil {
		return nil, err
	}
	res.Finalize(q.TopN)
	return res, nil
}

// QueryFiles runs q over an explicit file list. The result is finalized
// (sorted, top-N applied); callers that merge further (the aggregator)
// re-finalize after merging.
func (e Engine) QueryFiles(paths []string, q Query) (*Result, error) {
	res := &Result{
		FromUS:   int64(q.From),
		ToUS:     int64(q.To),
		WindowUS: int64(q.Window),
	}

	// Pass 1: group files by device (header peek only — no block reads),
	// ordered by (start timestamp, path) within a device.
	type fileInfo struct {
		path  string
		start trace.Timestamp
	}
	byDevice := map[string][]fileInfo{}
	var devices []string
	for _, path := range paths {
		device, start, err := peekHeader(path)
		if err != nil {
			return nil, fmt.Errorf("tsq: %s: %w", path, err)
		}
		if _, ok := byDevice[device]; !ok {
			devices = append(devices, device)
		}
		byDevice[device] = append(byDevice[device], fileInfo{path: path, start: start})
	}
	sort.Strings(devices)

	// Pass 2: scan each device's files in order through a windowed
	// accumulator; in-window batches arrive trimmed and app-filtered
	// straight off the columns.
	opt := trace.ScanOptions{Range: q.Range(), Apps: q.Apps}
	names := map[uint32]string{}
	var stats trace.ScanStats
	for _, device := range devices {
		files := byDevice[device]
		sort.Slice(files, func(i, j int) bool {
			if files[i].start != files[j].start {
				return files[i].start < files[j].start
			}
			return files[i].path < files[j].path
		})
		acc := analysis.NewWindowedAccumulator(device, q.Window, e.Opts)
		before := stats.RecordsMatched
		for _, fi := range files {
			if _, err := trace.ScanFile(fi.path, opt, &stats, func(b *trace.RecordBatch) error {
				harvestNames(b, names)
				acc.FeedBatch(b)
				return nil
			}); err != nil {
				return nil, fmt.Errorf("tsq: %s: %w", fi.path, err)
			}
		}
		if stats.RecordsMatched == before {
			continue // nothing in range on this device
		}
		res.Devices++
		for _, win := range acc.Finish() {
			addWindow(res, q, win)
		}
	}
	res.Records = stats.RecordsMatched
	res.Scan = statsOf(stats)
	fillNames(res, names)
	res.Finalize(q.TopN)
	return res, nil
}

// peekHeader reads just the file header (magic, device, start), never a
// block.
func peekHeader(path string) (string, trace.Timestamp, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return "", 0, err
	}
	return r.Device(), r.Start(), nil
}

// harvestNames collects app-name registrations from a scanned batch.
// Only names inside the query window are visible — resolution is
// best-effort and rows without one carry the numeric ID alone.
func harvestNames(b *trace.RecordBatch, names map[uint32]string) {
	for i, typ := range b.Types {
		if typ == trace.RecAppName {
			names[b.App[i]] = string(b.Bytes(i))
		}
	}
}

// addWindow folds one device-window stream result into the aggregate.
// Energy is the attributed total (idle floor excluded), matching the
// ingest headline's total_energy_j definition so the two are directly
// comparable.
func addWindow(res *Result, q Query, win analysis.WindowResult) {
	led := win.Res.Ledger
	rows := make([]AppRow, 0, len(led.ByApp))
	//repolint:ordered collection order is irrelevant: rows are sorted in Finalize before use
	for app, e := range led.ByApp {
		rows = append(rows, AppRow{App: app, EnergyJ: e, Bytes: led.BytesByApp[app]})
	}
	var bytes int64
	//repolint:ordered summation into a single scalar is order-insensitive for int64
	for _, b := range led.BytesByApp {
		bytes += b
	}
	res.TotalEnergyJ += led.Total
	res.TotalBytes += bytes
	res.Apps = mergeAppRows(res.Apps, rows)
	if q.Window > 0 {
		res.Windows = mergeWindows(res.Windows, []WindowRow{{
			StartUS: int64(win.Start),
			EndUS:   int64(win.Start + q.Window),
			EnergyJ: led.Total,
			Bytes:   bytes,
			Apps:    append([]AppRow(nil), rows...),
		}})
	}
}

// fillNames labels rows from the harvested name table.
func fillNames(res *Result, names map[uint32]string) {
	if len(names) == 0 {
		return
	}
	label := func(rows []AppRow) {
		for i := range rows {
			if rows[i].Name == "" {
				rows[i].Name = names[rows[i].App]
			}
		}
	}
	label(res.Apps)
	for i := range res.Windows {
		label(res.Windows[i].Apps)
	}
}
