package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipeConns builds a connected TCP pair over loopback (net.Pipe has no
// buffering, which deadlocks write-side tests).
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var (
		wg   sync.WaitGroup
		serr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, serr = ln.Accept()
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serr != nil {
		t.Fatal(serr)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestZeroConfigTransparent: a zero-config injector must be a no-op pipe.
func TestZeroConfigTransparent(t *testing.T) {
	client, server := pipeConns(t)
	c := New(Config{}).Wrap(client)
	msg := bytes.Repeat([]byte("abcdefgh"), 100)
	go func() {
		c.Write(msg) //nolint:errcheck
		c.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("bytes altered: got %d bytes", len(got))
	}
}

// TestCorruptionAltersBytes: with CorruptRate=1 every write must differ in
// exactly one bit, and the caller's buffer must stay pristine.
func TestCorruptionAltersBytes(t *testing.T) {
	client, server := pipeConns(t)
	in := New(Config{CorruptRate: 1, Seed: 7})
	c := in.Wrap(client)
	msg := bytes.Repeat([]byte{0x00}, 64)
	orig := bytes.Clone(msg)
	go func() {
		c.Write(msg) //nolint:errcheck
		c.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("caller buffer mutated")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			for b := 0; b < 8; b++ {
				if (got[i]^orig[i])>>b&1 == 1 {
					diff++
				}
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit flips = %d, want exactly 1", diff)
	}
	if _, corr, _, _ := in.Stats(); corr != 1 {
		t.Fatalf("corruption counter = %d", corr)
	}
}

// TestDropKillsConn: DropRate=1 must fail the first write and close the
// underlying connection.
func TestDropKillsConn(t *testing.T) {
	client, server := pipeConns(t)
	in := New(Config{DropRate: 1, Seed: 3})
	c := in.Wrap(client)
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded through a dropped conn")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("second write succeeded after drop")
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := server.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("server read = %v, want EOF", err)
	}
	if drops, _, _, _ := in.Stats(); drops != 1 {
		t.Fatalf("drop counter = %d", drops)
	}
}

// TestPartialWritePreservesBytes: splitting writes must be invisible to a
// stream reader.
func TestPartialWritePreservesBytes(t *testing.T) {
	client, server := pipeConns(t)
	in := New(Config{PartialRate: 1, Seed: 11})
	c := in.Wrap(client)
	msg := bytes.Repeat([]byte("0123456789"), 50)
	go func() {
		for off := 0; off < len(msg); off += 100 {
			c.Write(msg[off : off+100]) //nolint:errcheck
		}
		c.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("partial writes reordered or lost bytes")
	}
	if _, _, parts, _ := in.Stats(); parts != 5 {
		t.Fatalf("partial counter = %d, want 5", parts)
	}
}

// TestDeterministicSchedule: same seed, same wrap order, same faults.
func TestDeterministicSchedule(t *testing.T) {
	run := func() (drops int64) {
		in := New(Config{DropRate: 0.3, Seed: 42})
		for i := 0; i < 20; i++ {
			client, _ := pipeConns(t)
			c := in.Wrap(client)
			for j := 0; j < 10; j++ {
				if _, err := c.Write([]byte("payload")); err != nil {
					break
				}
			}
		}
		d, _, _, _ := in.Stats()
		return d
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Fatalf("schedules differ or empty: %d vs %d", a, b)
	}
}
