// Package chaos wraps net.Conn with deterministic fault injection — byte
// corruption, connection drops, added latency, and partial writes — so the
// ingest pipeline's recovery machinery (CRC sever, resume, retransmit,
// checkpoint replay) can be exercised under load instead of trusted on
// faith.
//
// Faults are injected on the WRITE side of the wrapped connection: the
// wrapper corrupts what the local side sends, which the remote peer then
// has to detect. That placement matches the threat model (a lossy network
// between collector and server) and keeps injection deterministic per
// connection: a seeded source decides every fault, so a failing run can be
// replayed exactly.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config sets fault probabilities and magnitudes. The zero value injects
// nothing.
type Config struct {
	// DropRate is the per-write probability of killing the connection
	// (simulates a mid-stream network partition).
	DropRate float64
	// CorruptRate is the per-write probability of flipping one bit in the
	// written bytes (simulates on-path corruption; the receiver's CRC must
	// catch it).
	CorruptRate float64
	// PartialRate is the per-write probability of splitting the write into
	// two separate TCP pushes (simulates fragmentation/short writes; must
	// be invisible to a correct reader).
	PartialRate float64
	// MaxLatency, when positive, sleeps a uniform random duration up to
	// this before each write (simulates jittery last-mile links).
	MaxLatency time.Duration
	// Seed fixes the fault schedule; 0 derives a schedule from the order
	// connections are wrapped (still deterministic within one Injector).
	Seed int64
}

// Injector hands out wrapped connections with per-connection seeded fault
// schedules. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu sync.Mutex
	n  int64

	// Counters for reporting what was actually injected.
	drops, corruptions, partials, delays int64
}

// New builds an Injector.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg}
}

// Wrap returns conn with fault injection applied to writes. Each wrapped
// connection gets its own rand stream derived from Seed and the wrap
// ordinal, so concurrent sessions do not contend on one source and a rerun
// with the same seed and connection order replays the same faults.
func (in *Injector) Wrap(conn net.Conn) net.Conn {
	in.mu.Lock()
	ordinal := in.n
	in.n++
	in.mu.Unlock()
	seed := in.cfg.Seed
	if seed == 0 {
		seed = 0x7f4a7c15
	}
	return &faultConn{
		Conn: conn,
		in:   in,
		rng:  rand.New(rand.NewSource(seed ^ (ordinal+1)*0x2545f4914f6cdd1d)),
	}
}

// Stats reports how many faults of each kind have been injected.
func (in *Injector) Stats() (drops, corruptions, partials, delays int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drops, in.corruptions, in.partials, in.delays
}

func (in *Injector) count(c *int64) {
	in.mu.Lock()
	*c++
	in.mu.Unlock()
}

// faultConn implements the write-side faults. Reads pass through: the
// server's acks are left intact so the tests exercise data-path recovery,
// not ack loss (a lost ack is indistinguishable from a dropped conn, which
// DropRate already covers).
type faultConn struct {
	net.Conn
	in   *Injector
	rng  *rand.Rand
	dead bool
}

func (c *faultConn) Write(b []byte) (int, error) {
	cfg := &c.in.cfg
	if c.dead {
		return 0, net.ErrClosed
	}
	if cfg.MaxLatency > 0 {
		d := time.Duration(c.rng.Int63n(int64(cfg.MaxLatency)))
		if d > 0 {
			c.in.count(&c.in.delays)
			time.Sleep(d)
		}
	}
	if cfg.DropRate > 0 && c.rng.Float64() < cfg.DropRate {
		c.in.count(&c.in.drops)
		c.dead = true
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if cfg.CorruptRate > 0 && len(b) > 0 && c.rng.Float64() < cfg.CorruptRate {
		c.in.count(&c.in.corruptions)
		// Corrupt a copy: the caller's buffer (e.g. a bufio.Writer's
		// internals) must not be altered under it.
		cp := make([]byte, len(b))
		copy(cp, b)
		cp[c.rng.Intn(len(cp))] ^= 1 << c.rng.Intn(8)
		b = cp
	}
	if cfg.PartialRate > 0 && len(b) > 1 && c.rng.Float64() < cfg.PartialRate {
		c.in.count(&c.in.partials)
		cut := 1 + c.rng.Intn(len(b)-1)
		n1, err := c.Conn.Write(b[:cut])
		if err != nil {
			return n1, err
		}
		n2, err := c.Conn.Write(b[cut:])
		return n1 + n2, err
	}
	return c.Conn.Write(b)
}
