package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestAdminZeroConfigTransparent: a zero-config transport must pass
// requests and responses through unaltered.
func TestAdminZeroConfigTransparent(t *testing.T) {
	body := bytes.Repeat([]byte("payload!"), 64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body) //nolint:errcheck
	}))
	defer srv.Close()
	cl := &http.Client{Transport: NewAdmin(AdminConfig{}).Transport("me", nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body altered: %d bytes", len(got))
	}
}

// TestAdminTimeoutFault: TimeoutRate=1 must fail every round trip with a
// net.Error whose Timeout() is true, before the server sees the request.
func TestAdminTimeoutFault(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer srv.Close()
	a := NewAdmin(AdminConfig{TimeoutRate: 1, Seed: 5})
	cl := &http.Client{Transport: a.Transport("me", nil)}
	_, err := cl.Get(srv.URL)
	if err == nil {
		t.Fatal("request succeeded with TimeoutRate=1")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v is not a net timeout", err)
	}
	if hits != 0 {
		t.Fatalf("server saw %d requests, want 0", hits)
	}
	if to, _, _, _ := a.Stats(); to != 1 {
		t.Fatalf("timeout counter = %d", to)
	}
}

// TestAdminCorruptFault: CorruptRate=1 must flip exactly one bit of the
// response body while keeping ContentLength truthful.
func TestAdminCorruptFault(t *testing.T) {
	body := bytes.Repeat([]byte{0x00}, 128)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body) //nolint:errcheck
	}))
	defer srv.Close()
	a := NewAdmin(AdminConfig{CorruptRate: 1, Seed: 9})
	cl := &http.Client{Transport: a.Transport("me", nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength != int64(len(got)) {
		t.Fatalf("ContentLength %d, body %d", resp.ContentLength, len(got))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^body[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit flips = %d, want exactly 1", diff)
	}
}

// TestAdminSlowFault: SlowRate=1 must delay the response, not fail it.
func TestAdminSlowFault(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	a := NewAdmin(AdminConfig{SlowRate: 1, MaxDelay: 30 * time.Millisecond, Seed: 13})
	cl := &http.Client{Transport: a.Transport("me", nil)}
	for i := 0; i < 4; i++ {
		resp, err := cl.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if _, _, slows, _ := a.Stats(); slows != 4 {
		t.Fatalf("slow counter = %d, want 4", slows)
	}
}

// TestPartitionCutSemantics: a request is blocked iff exactly one endpoint
// is inside the cut — same-side traffic keeps flowing, and Heal restores
// everything.
func TestPartitionCutSemantics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	target := srv.Listener.Addr().String()
	a := NewAdmin(AdminConfig{})

	get := func(self string) error {
		cl := &http.Client{Transport: a.Transport(self, nil)}
		resp, err := cl.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	a.Partition(target, true)
	if err := get("majority"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-cut request error = %v, want ErrPartitioned", err)
	}
	// A client inside the same cut still reaches the target.
	a.Partition("minority-peer", true)
	if err := get("minority-peer"); err != nil {
		t.Fatalf("same-side request blocked: %v", err)
	}
	a.Heal()
	if err := get("majority"); err != nil {
		t.Fatalf("healed request blocked: %v", err)
	}
	if _, _, _, blocked := a.Stats(); blocked != 1 {
		t.Fatalf("blocked counter = %d, want 1", blocked)
	}
}

// TestWrapStreamPartition: a live stream connection must start failing the
// moment its peer lands across the cut, and recover nothing afterwards —
// the session layer is expected to redial elsewhere.
func TestWrapStreamPartition(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c) //nolint:errcheck
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdmin(AdminConfig{})
	conn := a.WrapStream("client", raw)
	defer conn.Close()

	if _, err := conn.Write([]byte("before")); err != nil {
		t.Fatalf("pre-partition write failed: %v", err)
	}
	a.Partition(ln.Addr().String(), true)
	if _, err := conn.Write([]byte("during")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-cut write error = %v, want ErrPartitioned", err)
	}
	// The cut closed the underlying conn: healing does not resurrect it.
	a.Heal()
	if _, err := conn.Write([]byte("after")); err == nil {
		t.Fatal("write succeeded on a conn severed by the partition")
	}
}
