package chaos

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// ErrPartitioned is returned for any operation that would cross an active
// partition cut. It reaches callers wrapped, so test with errors.Is.
var ErrPartitioned = errors.New("chaos: partitioned")

// AdminConfig sets HTTP-plane fault probabilities and magnitudes. The zero
// value injects nothing; partitions are driven imperatively via Partition
// and Heal regardless of rates.
type AdminConfig struct {
	// TimeoutRate is the per-request probability of failing the round trip
	// with a timeout error before any bytes are exchanged (simulates a lost
	// request or a hung peer; the caller's retry policy must cover it).
	TimeoutRate float64
	// CorruptRate is the per-request probability of flipping one bit in the
	// response body (simulates on-path corruption; the consumer's CRC or
	// decoder must catch it).
	CorruptRate float64
	// SlowRate is the per-request probability of delaying the response by a
	// uniform random duration up to MaxDelay (simulates a congested or
	// GC-pausing peer; must not be mistaken for death).
	SlowRate float64
	// MaxDelay bounds SlowRate's injected latency.
	MaxDelay time.Duration
	// Seed fixes the fault schedule. With concurrent requests the draw
	// order follows scheduling, so replays are statistically — not
	// byte-for-byte — identical.
	Seed int64
}

// AdminFaults injects faults into a cluster's HTTP admin plane and
// enforces network partitions across both planes. A partition is a cut
// set of endpoint addresses: an operation is blocked iff exactly one of
// its two endpoints is inside the cut, so minority<->minority and
// majority<->majority traffic still flows — the standard two-sided
// partition model. One AdminFaults is shared by every party in a test so
// all of them observe the same cut. Safe for concurrent use.
type AdminFaults struct {
	cfg AdminConfig

	mu  sync.Mutex
	rng *rand.Rand
	cut map[string]bool

	timeouts, corruptions, slows, blocked int64
}

// NewAdmin builds an AdminFaults.
func NewAdmin(cfg AdminConfig) *AdminFaults {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &AdminFaults{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		cut: map[string]bool{},
	}
}

// Partition moves one endpoint address into (true) or out of (false) the
// cut set. A node usually has several addresses (stream and admin): cut
// them all to isolate it.
func (a *AdminFaults) Partition(addr string, cut bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cut {
		a.cut[addr] = true
	} else {
		delete(a.cut, addr)
	}
}

// Heal clears the whole cut set.
func (a *AdminFaults) Heal() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cut = map[string]bool{}
}

// Stats reports how many faults of each kind have been injected.
func (a *AdminFaults) Stats() (timeouts, corruptions, slows, blocked int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.timeouts, a.corruptions, a.slows, a.blocked
}

// crosses reports whether from->to traffic is blocked by the current cut.
func (a *AdminFaults) crosses(from, to string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cut[from] != a.cut[to] {
		a.blocked++
		return true
	}
	return false
}

// draw samples this request's fault schedule under the injector lock.
func (a *AdminFaults) draw() (timeout bool, corrupt bool, delay time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.TimeoutRate > 0 && a.rng.Float64() < a.cfg.TimeoutRate {
		a.timeouts++
		return true, false, 0
	}
	if a.cfg.CorruptRate > 0 && a.rng.Float64() < a.cfg.CorruptRate {
		a.corruptions++
		corrupt = true
	}
	if a.cfg.SlowRate > 0 && a.cfg.MaxDelay > 0 && a.rng.Float64() < a.cfg.SlowRate {
		a.slows++
		delay = time.Duration(a.rng.Int63n(int64(a.cfg.MaxDelay)))
	}
	return false, corrupt, delay
}

// flip corrupts one bit of b in place using the injector's rand stream.
func (a *AdminFaults) flip(b []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b[a.rng.Intn(len(b))] ^= 1 << a.rng.Intn(8)
}

// Transport wraps base (nil means http.DefaultTransport) with fault
// injection for requests originating at the endpoint address self.
// Partition blocks are checked against the request URL's host.
func (a *AdminFaults) Transport(self string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &adminTransport{a: a, self: self, base: base, faults: true}
}

// PartitionOnlyTransport is Transport without the probabilistic faults:
// requests crossing the cut are blocked, everything else passes clean.
// For planes — liveness probes above all — where an injected timeout
// would fabricate membership churn unrelated to the scenario under test.
func (a *AdminFaults) PartitionOnlyTransport(self string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &adminTransport{a: a, self: self, base: base}
}

type adminTransport struct {
	a      *AdminFaults
	self   string
	base   http.RoundTripper
	faults bool
}

// timeoutErr satisfies net.Error so callers treating timeouts specially
// (retry-with-backoff) exercise that path.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "chaos: injected timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func (t *adminTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.a.crosses(t.self, req.URL.Host) {
		if req.Body != nil {
			req.Body.Close() //nolint:errcheck
		}
		return nil, &net.OpError{Op: "roundtrip", Net: "tcp", Err: ErrPartitioned}
	}
	var timeout, corrupt bool
	var delay time.Duration
	if t.faults {
		timeout, corrupt, delay = t.a.draw()
	}
	if timeout {
		if req.Body != nil {
			req.Body.Close() //nolint:errcheck
		}
		return nil, &net.OpError{Op: "roundtrip", Net: "tcp", Err: timeoutErr{}}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if corrupt {
		// Corrupt a fully-buffered copy so ContentLength stays truthful and
		// the fault is in payload bytes, not framing.
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			t.a.flip(body)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}

// WrapStream applies the partition cut to a stream-plane connection
// originating at self: once the remote peer lands on the other side of
// the cut, every read and write fails with ErrPartitioned and the
// connection is closed — in-flight sessions sever and walk to another
// node, exactly like a mid-stream network split. Write-side data faults
// stay with Injector.Wrap; this wrapper is purely the partition model.
func (a *AdminFaults) WrapStream(self string, conn net.Conn) net.Conn {
	return &partConn{Conn: conn, a: a, self: self, remote: conn.RemoteAddr().String()}
}

type partConn struct {
	net.Conn
	a      *AdminFaults
	self   string
	remote string
}

func (c *partConn) check() error {
	if c.a.crosses(c.self, c.remote) {
		c.Conn.Close()
		return &net.OpError{Op: "write", Net: "tcp", Err: ErrPartitioned}
	}
	return nil
}

func (c *partConn) Write(b []byte) (int, error) {
	if err := c.check(); err != nil {
		return 0, err
	}
	return c.Conn.Write(b)
}

func (c *partConn) Read(b []byte) (int, error) {
	if err := c.check(); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}
