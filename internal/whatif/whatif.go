// Package whatif implements the paper's §5 what-if analysis: if the OS
// preemptively killed apps that have stayed in the background for several
// consecutive days, how much network energy would be saved?
//
// The simulation replays each device's per-day app ledgers under a policy
// "suppress the app's background traffic once it has gone killAfter
// consecutive days without foreground traffic; a foreground day revives
// it", and reports the Table 2 rows: the fraction of days with only
// background traffic (row A), the longest consecutive run of such days
// bounded by foreground activity (row B), and the average per-user energy
// reduction (row C).
package whatif

import (
	"sort"

	"netenergy/internal/analysis"
)

// dayKind classifies one (device, app, day).
type dayKind uint8

const (
	daySilent dayKind = iota // no traffic from the app
	dayBgOnly                // background traffic only
	dayFg                    // some foreground traffic
)

// AppResult is one Table 2 column (the table is transposed: apps are
// columns in the paper).
type AppResult struct {
	App   string
	Label string
	Users int // devices where the app produced traffic

	// PctBgOnlyDays is row A: of the days with any traffic from the app,
	// the percentage with only background traffic.
	PctBgOnlyDays float64

	// MaxConsecutiveBgDays is row B: the longest run of background-only
	// days bounded by foreground-traffic days on both sides, maximised
	// over users.
	MaxConsecutiveBgDays int

	// AvgEnergyReductionPct is row C: killing the app after killAfter
	// consecutive non-foreground days, the app-level energy reduction
	// averaged over users.
	AvgEnergyReductionPct float64

	// FleetEnergyReductionPct is the suppressed energy as a share of the
	// whole fleet's energy (the paper's "<1% overall" observation).
	FleetEnergyReductionPct float64

	// DeviceShareOnSuppressedDaysPct is the suppressed energy as a share
	// of the owning devices' total energy on the suppressed days (the
	// paper's "16% on those days" for Weibo).
	DeviceShareOnSuppressedDaysPct float64
}

// appDays returns the classified day sequence and day-index bounds for an
// app on one device.
func appDays(d *analysis.DeviceData, app uint32) (map[int]dayKind, []int) {
	days := d.Energy.Ledger.ByAppDay[app]
	kinds := make(map[int]dayKind, len(days))
	var idx []int
	//repolint:ordered idx is sorted below and kinds is keyed by day; iteration order cannot reach either output
	for day, ds := range days {
		if ds.Packets == 0 {
			continue
		}
		if ds.FgBytes > 0 {
			kinds[day] = dayFg
		} else {
			kinds[day] = dayBgOnly
		}
		idx = append(idx, day)
	}
	sort.Ints(idx)
	return kinds, idx
}

// maxBoundedRun returns the longest run of bg-only days bounded by fg days
// on both sides (silent days inside a run do not extend it but do not
// break boundedness either, matching "the maximum number of such days
// occurring consecutively").
func maxBoundedRun(kinds map[int]dayKind, idx []int) int {
	best := 0
	lastFg := -1
	run := 0
	for _, day := range idx {
		switch kinds[day] {
		case dayFg:
			if lastFg >= 0 && run > best {
				best = run
			}
			lastFg = day
			run = 0
		case dayBgOnly:
			if lastFg >= 0 {
				run++
			}
		}
	}
	return best
}

// simulateKill walks the day range and returns the suppressed energy and
// the set of suppressed days, under the kill-after-N policy. Consecutive
// non-foreground days (background-only or silent) accumulate; once the
// count exceeds killAfter, background energy on subsequent days is
// suppressed until a foreground day revives the app.
func simulateKill(d *analysis.DeviceData, app uint32, killAfter int) (saved float64, suppressed map[int]bool) {
	ledger := d.Energy.Ledger.ByAppDay[app]
	if len(ledger) == 0 {
		return 0, nil
	}
	firstDay := d.Span[0].Day()
	lastDay := d.Span[1].Day()
	suppressed = make(map[int]bool)
	nonFg := 0
	for day := firstDay; day <= lastDay; day++ {
		ds := ledger[day]
		isFg := ds != nil && ds.FgBytes > 0
		if isFg {
			nonFg = 0
			continue
		}
		nonFg++
		if nonFg > killAfter && ds != nil {
			saved += ds.BgEnergy
			suppressed[day] = true
		}
	}
	return saved, suppressed
}

// Evaluate computes Table 2 for the given packages under a
// kill-after-killAfter-days policy.
func Evaluate(devs []*analysis.DeviceData, packages, labels []string, killAfter int) []AppResult {
	fleetTotal := 0.0
	for _, d := range devs {
		fleetTotal += d.Energy.Ledger.Total
	}
	out := make([]AppResult, 0, len(packages))
	for i, pkg := range packages {
		r := AppResult{App: pkg, Label: pkg}
		if labels != nil && i < len(labels) && labels[i] != "" {
			r.Label = labels[i]
		}
		var bgOnlyDays, trafficDays int
		var reductions []float64
		var savedTotal float64
		var deviceEnergyOnSuppressed, savedOnSuppressed float64
		for _, d := range devs {
			app, ok := appIDOf(d, pkg)
			if !ok {
				continue
			}
			kinds, idx := appDays(d, app)
			if len(idx) == 0 {
				continue
			}
			r.Users++
			trafficDays += len(idx)
			for _, day := range idx {
				if kinds[day] == dayBgOnly {
					bgOnlyDays++
				}
			}
			if run := maxBoundedRun(kinds, idx); run > r.MaxConsecutiveBgDays {
				r.MaxConsecutiveBgDays = run
			}
			saved, supp := simulateKill(d, app, killAfter)
			savedTotal += saved
			appTotal := d.Energy.Ledger.ByApp[app]
			if appTotal > 0 {
				reductions = append(reductions, 100*saved/appTotal)
			}
			// Device-wide energy on the suppressed days.
			for day := range supp {
				for _, days := range d.Energy.Ledger.ByAppDay {
					if ds := days[day]; ds != nil {
						deviceEnergyOnSuppressed += ds.Energy
					}
				}
			}
			savedOnSuppressed += saved
		}
		if trafficDays > 0 {
			r.PctBgOnlyDays = 100 * float64(bgOnlyDays) / float64(trafficDays)
		}
		if len(reductions) > 0 {
			var sum float64
			for _, v := range reductions {
				sum += v
			}
			r.AvgEnergyReductionPct = sum / float64(len(reductions))
		}
		if fleetTotal > 0 {
			r.FleetEnergyReductionPct = 100 * savedTotal / fleetTotal
		}
		if deviceEnergyOnSuppressed > 0 {
			r.DeviceShareOnSuppressedDaysPct = 100 * savedOnSuppressed / deviceEnergyOnSuppressed
		}
		out = append(out, r)
	}
	return out
}

// Sweep evaluates total fleet savings for each kill threshold, for the
// threshold-sensitivity ablation (extends §5).
type SweepPoint struct {
	KillAfterDays int
	FleetSavedJ   float64
	FleetSavedPct float64
}

// SweepThresholds runs the policy for thresholds 1..maxDays over every app
// that produced traffic, summing fleet-wide suppressed energy.
func SweepThresholds(devs []*analysis.DeviceData, maxDays int) []SweepPoint {
	fleetTotal := 0.0
	for _, d := range devs {
		fleetTotal += d.Energy.Ledger.Total
	}
	out := make([]SweepPoint, 0, maxDays)
	for k := 1; k <= maxDays; k++ {
		var saved float64
		for _, d := range devs {
			for app := range d.Energy.Ledger.ByAppDay {
				s, _ := simulateKill(d, app, k)
				saved += s
			}
		}
		p := SweepPoint{KillAfterDays: k, FleetSavedJ: saved}
		if fleetTotal > 0 {
			p.FleetSavedPct = 100 * saved / fleetTotal
		}
		out = append(out, p)
	}
	return out
}

// appIDOf is a small indirection so whatif does not reach into analysis
// internals beyond the public surface.
func appIDOf(d *analysis.DeviceData, pkg string) (uint32, bool) {
	for i := 0; i < d.Apps.Len(); i++ {
		if d.Apps.Name(uint32(i)) == pkg {
			return uint32(i), true
		}
	}
	return 0, false
}

// PerUserSavings returns, for each device, the fraction of its total
// energy recovered by the kill-after-N-days policy applied to all apps —
// the distribution behind the paper's observation that "how much users
// benefit ... depends greatly on the set of apps involved and on user
// behavior".
func PerUserSavings(devs []*analysis.DeviceData, killAfter int) []float64 {
	out := make([]float64, 0, len(devs))
	for _, d := range devs {
		var saved float64
		for app := range d.Energy.Ledger.ByAppDay {
			s, _ := simulateKill(d, app, killAfter)
			saved += s
		}
		if total := d.Energy.Ledger.Total; total > 0 {
			out = append(out, saved/total)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// Candidate is an app recommended for isolation on one device: it has gone
// long stretches without foreground use while spending real background
// energy — the apps ZapDroid (cited by the paper as concurrent work) would
// quarantine.
type Candidate struct {
	Device      string
	App         string
	MaxIdleRun  int     // longest run of consecutive non-foreground days with traffic
	BgEnergyJ   float64 // background energy over the study
	ShareOfDev  float64 // fraction of the device's total energy
	SavingsEstJ float64 // energy a 3-day kill policy would recover
}

// IsolationCandidates scans the fleet for apps idle for at least
// minIdleDays consecutive days while consuming at least minBgJ of
// background energy, ranked by estimated savings.
func IsolationCandidates(devs []*analysis.DeviceData, minIdleDays int, minBgJ float64) []Candidate {
	var out []Candidate
	for _, d := range devs {
		devTotal := d.Energy.Ledger.Total
		//repolint:ordered candidates are fully ordered by the sort below: savings, then the unique (device, app) pair
		for app, days := range d.Energy.Ledger.ByAppDay {
			kinds, idx := appDays(d, app)
			if len(idx) == 0 {
				continue
			}
			run, maxRun := 0, 0
			var bgJ float64
			for _, day := range idx {
				if kinds[day] == dayFg {
					run = 0
				} else {
					run++
					if run > maxRun {
						maxRun = run
					}
				}
				bgJ += days[day].BgEnergy
			}
			if maxRun < minIdleDays || bgJ < minBgJ {
				continue
			}
			saved, _ := simulateKill(d, app, 3)
			c := Candidate{
				Device: d.Device, App: d.Apps.Name(app),
				MaxIdleRun: maxRun, BgEnergyJ: bgJ, SavingsEstJ: saved,
			}
			if devTotal > 0 {
				c.ShareOfDev = bgJ / devTotal
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SavingsEstJ != out[j].SavingsEstJ {
			return out[i].SavingsEstJ > out[j].SavingsEstJ
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].App < out[j].App
	})
	return out
}
