package whatif

import (
	"testing"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/netparse"
	"netenergy/internal/trace"
)

const daySec = 86400

// dayTrace builds a device trace where app "com.x" has one small packet per
// listed day; fg days get a foreground-state packet, bg days a service one.
func dayTrace(t *testing.T, fgDays, bgDays []int) *analysis.DeviceData {
	t.Helper()
	dt := &trace.DeviceTrace{Device: "d0", Start: 0, Apps: trace.NewAppTable()}
	app := dt.Apps.Intern("com.x")
	dt.Records = append(dt.Records, trace.Record{Type: trace.RecAppName, App: app, AppName: "com.x"})
	port := uint16(40000)
	add := func(day int, st trace.ProcState) {
		port++
		buf := make([]byte, 96)
		stored, _, err := netparse.BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 1, 1, 1},
			port, 443, 0, netparse.TCPAck, 500, 96)
		if err != nil {
			t.Fatal(err)
		}
		ts := trace.Timestamp(int64(day)*daySec+43200) * 1_000_000
		dt.Records = append(dt.Records, trace.Record{
			Type: trace.RecPacket, TS: ts, App: app, Dir: trace.DirUp,
			Net: trace.NetCellular, State: st, Payload: buf[:stored],
		})
	}
	for _, d := range fgDays {
		add(d, trace.StateForeground)
	}
	for _, d := range bgDays {
		add(d, trace.StateService)
	}
	dt.SortByTime()
	dd, err := analysis.Load(dt, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return dd
}

func TestRowABgOnlyDays(t *testing.T) {
	// fg on days 0 and 10; bg-only on days 1-9 (9 of 11 traffic days).
	dd := dayTrace(t, []int{0, 10}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	res := Evaluate([]*analysis.DeviceData{dd}, []string{"com.x"}, nil, 3)
	if len(res) != 1 {
		t.Fatal("no result")
	}
	r := res[0]
	if r.Users != 1 {
		t.Errorf("users = %d", r.Users)
	}
	want := 100.0 * 9 / 11
	if r.PctBgOnlyDays < want-0.01 || r.PctBgOnlyDays > want+0.01 {
		t.Errorf("pct bg-only = %v, want %v", r.PctBgOnlyDays, want)
	}
}

func TestRowBMaxConsecutive(t *testing.T) {
	// Runs: days 1-9 bounded by fg days 0 and 10 (9 days); days 12-13
	// bounded by fg 10 but no closing fg -> unbounded, not counted.
	dd := dayTrace(t, []int{0, 10}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13})
	res := Evaluate([]*analysis.DeviceData{dd}, []string{"com.x"}, nil, 3)
	if res[0].MaxConsecutiveBgDays != 9 {
		t.Errorf("max run = %d, want 9", res[0].MaxConsecutiveBgDays)
	}
}

func TestRowCKillSavings(t *testing.T) {
	// fg day 0; bg days 1-9. Kill-after-3: days 4-9 suppressed (6 of 9 bg
	// days); each bg day costs the same isolated-burst energy, so the
	// app-level reduction should be slightly under 6/10 of total.
	dd := dayTrace(t, []int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	res := Evaluate([]*analysis.DeviceData{dd}, []string{"com.x"}, nil, 3)
	r := res[0]
	if r.AvgEnergyReductionPct < 50 || r.AvgEnergyReductionPct > 65 {
		t.Errorf("reduction = %v%%, want ~60%%", r.AvgEnergyReductionPct)
	}
	if r.FleetEnergyReductionPct <= 0 {
		t.Error("fleet reduction should be positive")
	}
	// Single-app device: suppressed-day share is 100% (all energy on those
	// days is the app's background energy).
	if r.DeviceShareOnSuppressedDaysPct < 99 {
		t.Errorf("device share on suppressed days = %v", r.DeviceShareOnSuppressedDaysPct)
	}
}

func TestKillRevivedByForeground(t *testing.T) {
	// fg 0, bg 1-5, fg 6, bg 7-8: after the fg on day 6 the counter
	// resets, so days 7-8 are not suppressed (run too short).
	dd := dayTrace(t, []int{0, 6}, []int{1, 2, 3, 4, 5, 7, 8})
	res := Evaluate([]*analysis.DeviceData{dd}, []string{"com.x"}, nil, 3)
	// Suppressed: days 4,5 only -> 2 of 9 traffic days.
	r := res[0]
	if r.AvgEnergyReductionPct < 10 || r.AvgEnergyReductionPct > 30 {
		t.Errorf("reduction = %v%%, want ~20%%", r.AvgEnergyReductionPct)
	}
}

func TestNoSavingsForActivelyUsedApp(t *testing.T) {
	dd := dayTrace(t, []int{0, 1, 2, 3, 4, 5}, []int{})
	res := Evaluate([]*analysis.DeviceData{dd}, []string{"com.x"}, nil, 3)
	if res[0].AvgEnergyReductionPct != 0 {
		t.Errorf("reduction for daily-used app = %v", res[0].AvgEnergyReductionPct)
	}
	if res[0].PctBgOnlyDays != 0 {
		t.Errorf("bg-only days = %v", res[0].PctBgOnlyDays)
	}
}

func TestAbsentApp(t *testing.T) {
	dd := dayTrace(t, []int{0}, []int{1})
	res := Evaluate([]*analysis.DeviceData{dd}, []string{"com.absent"}, []string{"Absent"}, 3)
	r := res[0]
	if r.Users != 0 || r.AvgEnergyReductionPct != 0 || r.Label != "Absent" {
		t.Errorf("absent app row = %+v", r)
	}
}

func TestSweepMonotone(t *testing.T) {
	dd := dayTrace(t, []int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	pts := SweepThresholds([]*analysis.DeviceData{dd}, 7)
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FleetSavedJ > pts[i-1].FleetSavedJ+1e-9 {
			t.Errorf("savings increased with a laxer threshold: %v", pts)
		}
	}
	if pts[0].FleetSavedPct <= 0 {
		t.Error("threshold 1 should save something")
	}
}

func TestMultiUserAveraging(t *testing.T) {
	// User A: heavy idle (big savings). User B: daily use (no savings).
	a := dayTrace(t, []int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	bT := dayTrace(t, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, []int{})
	bT.Device = "d1"
	res := Evaluate([]*analysis.DeviceData{a, bT}, []string{"com.x"}, nil, 3)
	r := res[0]
	if r.Users != 2 {
		t.Fatalf("users = %d", r.Users)
	}
	// Average of ~60% and 0%.
	if r.AvgEnergyReductionPct < 25 || r.AvgEnergyReductionPct > 35 {
		t.Errorf("avg reduction = %v%%", r.AvgEnergyReductionPct)
	}
}

func TestIsolationCandidates(t *testing.T) {
	// An app idle 9 days with bg energy qualifies; a daily-used app does not.
	idle := dayTrace(t, []int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	cands := IsolationCandidates([]*analysis.DeviceData{idle}, 5, 1)
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
	c := cands[0]
	if c.App != "com.x" || c.MaxIdleRun != 9 {
		t.Errorf("candidate = %+v", c)
	}
	if c.SavingsEstJ <= 0 || c.BgEnergyJ <= 0 {
		t.Errorf("estimates: %+v", c)
	}
	if c.ShareOfDev <= 0 || c.ShareOfDev > 1 {
		t.Errorf("share = %v", c.ShareOfDev)
	}

	active := dayTrace(t, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, nil)
	active.Device = "d1"
	if got := IsolationCandidates([]*analysis.DeviceData{active}, 5, 1); len(got) != 0 {
		t.Errorf("daily-used app flagged: %+v", got)
	}

	// Thresholds filter.
	if got := IsolationCandidates([]*analysis.DeviceData{idle}, 20, 1); len(got) != 0 {
		t.Errorf("idle-run threshold ignored: %+v", got)
	}
	if got := IsolationCandidates([]*analysis.DeviceData{idle}, 5, 1e12); len(got) != 0 {
		t.Errorf("energy threshold ignored: %+v", got)
	}
}
