package whatif

import (
	"slices"
	"sort"

	"netenergy/internal/analysis"
	"netenergy/internal/radio"
	"netenergy/internal/trace"
)

// BatchResult quantifies the paper's §6 recommendation — "app developers
// should continue to batch traffic to minimize the frequency of background
// updates" — by coalescing each app's background bursts into groups of
// Factor and re-accounting the radio energy. Data volume and content are
// unchanged; only timing moves (updates are delayed to the end of their
// batch window, the tradeoff the paper discusses).
type BatchResult struct {
	Factor    int
	BaselineJ float64
	BatchedJ  float64
	SavedJ    float64
	SavedPct  float64
	// MaxDelayS is the largest delay any burst experienced (the
	// staleness cost of batching).
	MaxDelayS float64
}

// MaxDeferS bounds how long a burst may be delayed by batching: groups are
// split rather than deferring an update by more than this (2 h). Without a
// bound, batching across multi-day idle gaps would imply absurd staleness.
const MaxDeferS = 7200

// SimulateBatching re-times one device's background packets so that every
// run of up to `factor` consecutive background bursts of an app (within a
// MaxDeferS window) is emitted together at the last burst's time, then
// re-accounts energy over the merged stream (foreground packets keep their
// original times).
func SimulateBatching(d *analysis.DeviceData, p radio.Params, factor int) BatchResult {
	res := BatchResult{Factor: factor, BaselineJ: d.Energy.Ledger.Total}
	if factor < 2 {
		res.BatchedJ = res.BaselineJ
		return res
	}

	type ev struct {
		ts    float64
		bytes int
		dir   radio.Dir
	}
	var evs []ev

	// Group each app's background packets into bursts (15 s gap), then
	// shift each burst to the end of its batch group.
	type appPkt struct {
		ts    float64
		bytes int
		dir   radio.Dir
	}
	byApp := map[uint32][]appPkt{}
	for i := range d.Energy.Packets {
		pkt := &d.Energy.Packets[i]
		dir := radio.Down
		if pkt.Dir == trace.DirUp {
			dir = radio.Up
		}
		if !pkt.State.IsBackground() {
			evs = append(evs, ev{pkt.TS.Seconds(), pkt.Bytes, dir})
			continue
		}
		byApp[pkt.App] = append(byApp[pkt.App], appPkt{pkt.TS.Seconds(), pkt.Bytes, dir})
	}
	const burstGap = 15.0
	// Process apps in ascending ID order: the evs sort below keys only on
	// timestamp, so same-instant packets from different apps would
	// otherwise be replayed in map-iteration (run-dependent) order.
	apps := make([]uint32, 0, len(byApp))
	//repolint:ordered collection order is irrelevant: app IDs are sorted before use
	for app := range byApp {
		apps = append(apps, app)
	}
	slices.Sort(apps)
	for _, app := range apps {
		pkts := byApp[app]
		// Burst boundaries.
		var burstStart []int
		for i := range pkts {
			if i == 0 || pkts[i].ts-pkts[i-1].ts > burstGap {
				burstStart = append(burstStart, i)
			}
		}
		// Walk bursts in groups of up to `factor`, splitting a group when
		// the deferral bound would be exceeded; shift each burst in a
		// group to the anchor (last burst of the group), preserving
		// intra-burst spacing.
		for g := 0; g < len(burstStart); {
			lastIdx := g
			first := pkts[burstStart[g]].ts
			for lastIdx+1 < len(burstStart) && lastIdx-g+1 < factor &&
				pkts[burstStart[lastIdx+1]].ts-first <= MaxDeferS {
				lastIdx++
			}
			anchor := pkts[burstStart[lastIdx]].ts
			for b := g; b <= lastIdx; b++ {
				start := burstStart[b]
				end := len(pkts)
				if b+1 < len(burstStart) {
					end = burstStart[b+1]
				}
				base := pkts[start].ts
				delay := anchor - base
				if delay > res.MaxDelayS {
					res.MaxDelayS = delay
				}
				for i := start; i < end; i++ {
					evs = append(evs, ev{pkts[i].ts + delay, pkts[i].bytes, pkts[i].dir})
				}
			}
			g = lastIdx + 1
		}
	}

	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
	acct := radio.NewAccountant(p)
	for _, e := range evs {
		acct.OnPacket(e.ts, e.bytes, e.dir)
	}
	acct.Finish()
	res.BatchedJ = acct.TotalEnergy()
	res.SavedJ = res.BaselineJ - res.BatchedJ
	if res.BaselineJ > 0 {
		res.SavedPct = 100 * res.SavedJ / res.BaselineJ
	}
	return res
}

// SimulateBatchingFleet aggregates the batching policy over every device.
func SimulateBatchingFleet(devs []*analysis.DeviceData, p radio.Params, factor int) BatchResult {
	agg := BatchResult{Factor: factor}
	for _, d := range devs {
		r := SimulateBatching(d, p, factor)
		agg.BaselineJ += r.BaselineJ
		agg.BatchedJ += r.BatchedJ
		agg.SavedJ += r.SavedJ
		if r.MaxDelayS > agg.MaxDelayS {
			agg.MaxDelayS = r.MaxDelayS
		}
	}
	if agg.BaselineJ > 0 {
		agg.SavedPct = 100 * agg.SavedJ / agg.BaselineJ
	}
	return agg
}
