package whatif

import (
	"testing"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/netparse"
	"netenergy/internal/radio"
	"netenergy/internal/trace"
)

const hour = trace.Timestamp(3600 * 1_000_000)

// dozeTrace builds a device with one short foreground session at t=0 and a
// background poller firing every 30 minutes afterwards.
func dozeTrace(t *testing.T) *analysis.DeviceData {
	t.Helper()
	dt := &trace.DeviceTrace{Device: "d0", Start: 0, Apps: trace.NewAppTable()}
	app := dt.Apps.Intern("com.poller")
	dt.Records = append(dt.Records, trace.Record{Type: trace.RecAppName, App: app, AppName: "com.poller"})
	dt.Records = append(dt.Records,
		trace.Record{Type: trace.RecProcState, TS: 0, App: app, State: trace.StateForeground},
		trace.Record{Type: trace.RecProcState, TS: 10 * 60 * 1_000_000, App: app, State: trace.StateService},
	)
	port := uint16(40000)
	add := func(ts trace.Timestamp, st trace.ProcState) {
		port++
		buf := make([]byte, 96)
		stored, _, err := netparse.BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 1, 1, 1},
			port, 443, 0, netparse.TCPAck, 2000, 96)
		if err != nil {
			t.Fatal(err)
		}
		dt.Records = append(dt.Records, trace.Record{
			Type: trace.RecPacket, TS: ts, App: app, Dir: trace.DirUp,
			Net: trace.NetCellular, State: st, Payload: buf[:stored],
		})
	}
	add(60*1_000_000, trace.StateForeground) // during the session
	for i := 1; i <= 48; i++ {               // every 30 min for a day
		add(trace.Timestamp(i)*hour/2, trace.StateService)
	}
	dt.SortByTime()
	dd, err := analysis.Load(dt, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return dd
}

func TestDozeSuppressesIdleBackground(t *testing.T) {
	dd := dozeTrace(t)
	cfg := DozeConfig{IdleAfter: 3600} // no maintenance windows
	res := SimulateDoze(dd, radio.LTE(), cfg)
	if res.Suppressed == 0 {
		t.Fatal("nothing suppressed")
	}
	// Polls within the first ~70 minutes survive (device active at 0-10 min
	// + 1 h idle threshold); the remaining ~46 of 48 are suppressed.
	if res.Suppressed < 40 || res.Suppressed > 47 {
		t.Errorf("suppressed = %d", res.Suppressed)
	}
	if res.SavedPct < 50 {
		t.Errorf("saved only %.1f%%", res.SavedPct)
	}
	if diff := res.DozedJ + res.SavedJ - res.BaselineJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("energy bookkeeping inconsistent by %v J", diff)
	}
}

func TestDozeMaintenanceWindows(t *testing.T) {
	dd := dozeTrace(t)
	strict := SimulateDoze(dd, radio.LTE(), DozeConfig{IdleAfter: 3600})
	lenient := SimulateDoze(dd, radio.LTE(), DozeConfig{
		IdleAfter: 3600, MaintenanceEvery: 4 * 3600, MaintenanceLen: 1800,
	})
	if lenient.Suppressed >= strict.Suppressed {
		t.Errorf("maintenance windows should let some packets through: %d vs %d",
			lenient.Suppressed, strict.Suppressed)
	}
	if lenient.SavedJ > strict.SavedJ {
		t.Error("lenient policy should not save more")
	}
}

func TestDozeWhitelist(t *testing.T) {
	dd := dozeTrace(t)
	app, _ := dozeAppID(dd, "com.poller")
	res := SimulateDoze(dd, radio.LTE(), DozeConfig{
		IdleAfter: 3600, Whitelist: map[uint32]bool{app: true},
	})
	if res.Suppressed != 0 {
		t.Errorf("whitelisted app suppressed %d packets", res.Suppressed)
	}
	if res.SavedJ > 1e-6 {
		t.Errorf("whitelisted app saved %v J", res.SavedJ)
	}
}

func TestDozeForegroundNeverSuppressed(t *testing.T) {
	dd := dozeTrace(t)
	res := SimulateDoze(dd, radio.LTE(), DozeConfig{IdleAfter: 1})
	// One foreground packet exists; with a 1-second threshold everything
	// background is suppressed but the foreground packet survives.
	if res.TotalPackets-res.Suppressed < 1 {
		t.Error("foreground packet was suppressed")
	}
}

func TestDozeFleetAggregation(t *testing.T) {
	a, b := dozeTrace(t), dozeTrace(t)
	b.Device = "d1"
	agg := SimulateDozeFleet([]*analysis.DeviceData{a, b}, radio.LTE(), DefaultDoze())
	single := SimulateDoze(a, radio.LTE(), DefaultDoze())
	if agg.TotalPackets != 2*single.TotalPackets {
		t.Errorf("fleet packets = %d", agg.TotalPackets)
	}
	if agg.SavedJ < single.SavedJ {
		t.Error("fleet savings below single device")
	}
}

func TestDefaultDozeSane(t *testing.T) {
	cfg := DefaultDoze()
	if cfg.IdleAfter != 3600 || cfg.MaintenanceEvery <= 0 || cfg.MaintenanceLen <= 0 {
		t.Errorf("default doze config: %+v", cfg)
	}
}

// dozeAppID mirrors appIDOf for tests.
func dozeAppID(d *analysis.DeviceData, pkg string) (uint32, bool) {
	return appIDOf(d, pkg)
}

func TestBatchingSavesEnergy(t *testing.T) {
	dd := dozeTrace(t) // 48 half-hourly isolated bursts
	res := SimulateBatching(dd, radio.LTE(), 4)
	if res.SavedPct < 40 {
		t.Errorf("4x batching saved only %.1f%%", res.SavedPct)
	}
	if res.BatchedJ+res.SavedJ-res.BaselineJ > 1e-6 {
		t.Error("bookkeeping inconsistent")
	}
	// Delays bounded by (factor-1) x burst spacing (~30 min each).
	if res.MaxDelayS < 3000 || res.MaxDelayS > 4*1900 {
		t.Errorf("max delay = %.0f s", res.MaxDelayS)
	}
}

func TestBatchingFactorOne(t *testing.T) {
	dd := dozeTrace(t)
	res := SimulateBatching(dd, radio.LTE(), 1)
	if res.SavedJ != 0 || res.BatchedJ != res.BaselineJ {
		t.Errorf("factor 1 should be identity: %+v", res)
	}
}

func TestBatchingMonotoneInFactor(t *testing.T) {
	dd := dozeTrace(t)
	prev := SimulateBatching(dd, radio.LTE(), 2).BatchedJ
	for _, f := range []int{4, 8} {
		cur := SimulateBatching(dd, radio.LTE(), f).BatchedJ
		if cur > prev+1e-6 {
			t.Errorf("batching x%d costs more than smaller factor: %v > %v", f, cur, prev)
		}
		prev = cur
	}
}

func TestBatchingFleet(t *testing.T) {
	a, b := dozeTrace(t), dozeTrace(t)
	b.Device = "d1"
	agg := SimulateBatchingFleet([]*analysis.DeviceData{a, b}, radio.LTE(), 4)
	single := SimulateBatching(a, radio.LTE(), 4)
	if agg.BaselineJ < 2*single.BaselineJ-1e-6 {
		t.Errorf("fleet baseline = %v", agg.BaselineJ)
	}
	if agg.SavedPct <= 0 {
		t.Error("fleet batching saved nothing")
	}
}
