package whatif

import (
	"sort"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/radio"
	"netenergy/internal/trace"
)

// DozeConfig models the Android M Doze behaviour the paper's conclusion
// anticipates ("Google announced Android M, where all background activity
// is disabled when the device is idle"): once the device has been idle —
// no app in the foreground — for IdleAfter seconds, background traffic is
// suppressed except during periodic maintenance windows.
type DozeConfig struct {
	IdleAfter        float64 // seconds of no foreground use before dozing
	MaintenanceEvery float64 // seconds between maintenance windows while dozed
	MaintenanceLen   float64 // length of each maintenance window
	// Whitelist lists app IDs exempt from suppression (the paper proposes
	// "a new permission or whitelist" for legitimate background apps).
	Whitelist map[uint32]bool
}

// DefaultDoze matches the behaviour sketch of the Android M preview:
// doze after 1 h idle with a ~10-minute maintenance window every 6 h.
func DefaultDoze() DozeConfig {
	return DozeConfig{IdleAfter: 3600, MaintenanceEvery: 6 * 3600, MaintenanceLen: 600}
}

// DozeResult summarises the simulation for one device or a fleet.
type DozeResult struct {
	BaselineJ    float64
	DozedJ       float64
	SavedJ       float64
	SavedPct     float64
	Suppressed   int // packets suppressed
	TotalPackets int
}

// deviceActivity merges all apps' foreground intervals into a sorted
// device-level activity timeline.
func deviceActivity(d *analysis.DeviceData) [][2]trace.Timestamp {
	var spans [][2]trace.Timestamp
	for _, app := range d.Tracker.Apps() {
		for _, iv := range d.Tracker.Timeline(app, d.Span[1]) {
			if iv.State.IsForeground() {
				spans = append(spans, [2]trace.Timestamp{iv.Start, iv.End})
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	// Merge overlaps.
	var out [][2]trace.Timestamp
	for _, s := range spans {
		if n := len(out); n > 0 && s[0] <= out[n-1][1] {
			if s[1] > out[n-1][1] {
				out[n-1][1] = s[1]
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// lastActivityBefore returns the end of the latest activity span at or
// before ts, and whether any exists.
func lastActivityBefore(spans [][2]trace.Timestamp, ts trace.Timestamp) (trace.Timestamp, bool) {
	i := sort.Search(len(spans), func(i int) bool { return spans[i][0] > ts })
	if i == 0 {
		return 0, false
	}
	s := spans[i-1]
	if s[1] > ts {
		return ts, true // device active right now
	}
	return s[1], true
}

// SimulateDoze replays one device's packet stream under the Doze policy:
// background packets arriving while the device is dozed (and outside
// maintenance windows) are dropped, and the radio energy is re-accounted
// over the surviving packets. Re-accounting matters — removing packets also
// removes the tails they would have kept alive.
func SimulateDoze(d *analysis.DeviceData, p radio.Params, cfg DozeConfig) DozeResult {
	res := DozeResult{BaselineJ: d.Energy.Ledger.Total, TotalPackets: len(d.Energy.Packets)}
	activity := deviceActivity(d)

	acct := radio.NewAccountant(p)
	for i := range d.Energy.Packets {
		pkt := &d.Energy.Packets[i]
		if suppressedByDoze(pkt, activity, cfg) {
			res.Suppressed++
			continue
		}
		dir := radio.Down
		if pkt.Dir == trace.DirUp {
			dir = radio.Up
		}
		acct.OnPacket(pkt.TS.Seconds(), pkt.Bytes, dir)
	}
	acct.Finish()
	res.DozedJ = acct.TotalEnergy()
	res.SavedJ = res.BaselineJ - res.DozedJ
	if res.BaselineJ > 0 {
		res.SavedPct = 100 * res.SavedJ / res.BaselineJ
	}
	return res
}

// suppressedByDoze decides whether a packet is dropped under the policy:
// background-state packets while the device has been idle past the
// threshold, outside maintenance windows, from non-whitelisted apps.
func suppressedByDoze(pkt *energy.Packet, activity [][2]trace.Timestamp, cfg DozeConfig) bool {
	if !pkt.State.IsBackground() {
		return false
	}
	if cfg.Whitelist[pkt.App] {
		return false
	}
	lastAct, ok := lastActivityBefore(activity, pkt.TS)
	if !ok {
		// No activity ever observed before this packet: treat the trace
		// start as activity so early traffic is not unfairly suppressed.
		return false
	}
	idle := pkt.TS.Sub(lastAct)
	if idle <= cfg.IdleAfter {
		return false
	}
	if cfg.MaintenanceEvery > 0 && cfg.MaintenanceLen > 0 {
		// Maintenance windows open periodically once dozed.
		sinceDoze := idle - cfg.IdleAfter
		phase := sinceDoze - float64(int(sinceDoze/cfg.MaintenanceEvery))*cfg.MaintenanceEvery
		if phase < cfg.MaintenanceLen {
			return false
		}
	}
	return true
}

// SimulateDozeFleet runs the policy over every device and aggregates.
func SimulateDozeFleet(devs []*analysis.DeviceData, p radio.Params, cfg DozeConfig) DozeResult {
	var agg DozeResult
	for _, d := range devs {
		r := SimulateDoze(d, p, cfg)
		agg.BaselineJ += r.BaselineJ
		agg.DozedJ += r.DozedJ
		agg.SavedJ += r.SavedJ
		agg.Suppressed += r.Suppressed
		agg.TotalPackets += r.TotalPackets
	}
	if agg.BaselineJ > 0 {
		agg.SavedPct = 100 * agg.SavedJ / agg.BaselineJ
	}
	return agg
}
