// Package usermodel simulates smartphone users: which apps each user has
// installed, multi-day engagement/idle runs per app (the §5 pattern of apps
// left untouched for days while their background services keep polling),
// and the daily phone-pickup sessions that become per-app foreground
// sessions.
//
// The model produces the app-usage diversity the paper observes in
// Figure 1: a handful of apps (media, Facebook, Play) common to everyone,
// and otherwise highly individual top-ten lists.
package usermodel

import (
	"fmt"
	"sort"

	"netenergy/internal/appmodel"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

// Config controls user synthesis.
type Config struct {
	Start trace.Timestamp
	Days  int
	// ActivityScale multiplies every app's SessionsPerDay, modelling
	// lighter or heavier phone users; each user additionally gets an
	// individual multiplier around this value. 1.0 is the paper-calibrated
	// default.
	ActivityScale float64
}

// DefaultConfig returns the fleet defaults.
func DefaultConfig(start trace.Timestamp, days int) Config {
	return Config{Start: start, Days: days, ActivityScale: 1}
}

// User is one synthesised user: installed apps and their foreground
// session schedules.
type User struct {
	ID        string
	Installed []int                      // indexes into the profile slice
	Sessions  map[int][]appmodel.Session // profile index -> sorted sessions
	// EngagedDays[profileIdx][day] reports whether the user was actively
	// using the app that day (foreground sessions only happen on engaged
	// days); exposed for tests and what-if analyses.
	EngagedDays map[int][]bool
}

// diurnalWeights is the relative likelihood of a pickup starting in each
// hour of the day: quiet nights, morning rise, evening peak.
var diurnalWeights = []float64{
	0.3, 0.15, 0.1, 0.08, 0.08, 0.2, 0.6, 1.2, // 00-07
	1.8, 1.8, 1.6, 1.6, 1.9, 1.8, 1.6, 1.6, // 08-15
	1.8, 2.1, 2.4, 2.6, 2.8, 2.6, 1.9, 0.9, // 16-23
}

// Build synthesises one user. The source should be a per-user split of the
// study seed so users are independent and reproducible.
func Build(id string, src *rng.Source, profiles []appmodel.Profile, cfg Config) *User {
	u := &User{
		ID:          id,
		Sessions:    make(map[int][]appmodel.Session),
		EngagedDays: make(map[int][]bool),
	}
	// Install decisions.
	for i := range profiles {
		if src.Bool(profiles[i].InstallProb) {
			u.Installed = append(u.Installed, i)
		}
	}
	// Per-app engagement runs: alternating engaged/idle streaks in days.
	for _, pi := range u.Installed {
		p := &profiles[pi]
		if p.NeverForeground {
			continue
		}
		days := make([]bool, cfg.Days)
		engaged := src.Bool(0.6)
		d := 0
		for d < cfg.Days {
			var run int
			if engaged {
				run = 1 + int(src.Exp(p.UseDaysMean))
			} else {
				run = 1 + int(src.Exp(p.GapDaysMean))
			}
			for i := 0; i < run && d < cfg.Days; i++ {
				days[d] = engaged
				d++
			}
			engaged = !engaged
		}
		u.EngagedDays[pi] = days
	}

	// Per-(user, app) affinity so users differ in which apps dominate.
	affinity := make(map[int]float64)
	for _, pi := range u.Installed {
		affinity[pi] = src.LogNormalMean(1, 0.7)
	}

	hourPick := rng.NewCategorical(src, diurnalWeights)
	scale := cfg.ActivityScale
	if scale <= 0 {
		scale = 1
	}
	scale = src.Jitter(scale, 0.4)

	type sess struct {
		pi         int
		start, end trace.Timestamp
	}
	var all []sess
	for day := 0; day < cfg.Days; day++ {
		for _, pi := range u.Installed {
			p := &profiles[pi]
			if p.NeverForeground {
				continue
			}
			if ed := u.EngagedDays[pi]; ed != nil && !ed[day] {
				continue
			}
			n := src.Poisson(p.SessionsPerDay * affinity[pi] * scale)
			for i := 0; i < n; i++ {
				hour := hourPick.Next()
				startSec := float64(day)*86400 + float64(hour)*3600 + src.Float64()*3600
				dur := src.LogNormalMean(p.SessionMean, 0.8)
				if dur < 5 {
					dur = 5
				}
				start := cfg.Start.AddSeconds(startSec)
				all = append(all, sess{pi: pi, start: start, end: start.AddSeconds(dur)})
			}
		}
	}

	// One foreground app at a time: sort by start and drop overlaps.
	sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
	var lastEnd trace.Timestamp
	for _, s := range all {
		if s.start < lastEnd {
			continue
		}
		u.Sessions[s.pi] = append(u.Sessions[s.pi], appmodel.Session{Start: s.start, End: s.end})
		lastEnd = s.end
	}
	return u
}

// AllSessions returns every session of the user across apps, sorted by
// start time — the phone's overall usage timeline (used for screen events).
func (u *User) AllSessions() []appmodel.Session {
	// Walk profiles in index order: the sort below is not stable and keys
	// only on Start, so two sessions starting at the same instant would
	// otherwise land in map-iteration (run-dependent) order.
	pis := make([]int, 0, len(u.Sessions))
	//repolint:ordered collection order is irrelevant: indexes are sorted before use
	for pi := range u.Sessions {
		pis = append(pis, pi)
	}
	sort.Ints(pis)
	var out []appmodel.Session
	for _, pi := range pis {
		out = append(out, u.Sessions[pi]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// String summarises the user.
func (u *User) String() string {
	n := 0
	for _, ss := range u.Sessions {
		n += len(ss)
	}
	return fmt.Sprintf("user %s: %d apps installed, %d sessions", u.ID, len(u.Installed), n)
}
