package usermodel

import (
	"testing"

	"netenergy/internal/appmodel"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

func build(t *testing.T, seed uint64, days int) (*User, []appmodel.Profile) {
	t.Helper()
	profiles := appmodel.AllProfiles()
	cfg := DefaultConfig(0, days)
	u := Build("u01", rng.New(seed), profiles, cfg)
	return u, profiles
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := build(t, 42, 14)
	b, _ := build(t, 42, 14)
	if len(a.Installed) != len(b.Installed) {
		t.Fatal("installs differ across identical seeds")
	}
	for pi, sa := range a.Sessions {
		sb := b.Sessions[pi]
		if len(sa) != len(sb) {
			t.Fatalf("app %d sessions differ: %d vs %d", pi, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("session %d differs", i)
			}
		}
	}
}

func TestUsersDiffer(t *testing.T) {
	a, _ := build(t, 1, 14)
	b, _ := build(t, 2, 14)
	if len(a.Installed) == len(b.Installed) {
		same := true
		for i := range a.Installed {
			if a.Installed[i] != b.Installed[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("two users have identical app installs — no diversity")
		}
	}
}

func TestSessionsNonOverlapping(t *testing.T) {
	u, _ := build(t, 3, 28)
	all := u.AllSessions()
	if len(all) < 50 {
		t.Fatalf("only %d sessions in 28 days", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].End {
			t.Fatalf("sessions overlap: %v then %v", all[i-1], all[i])
		}
	}
}

func TestSessionsWithinSpan(t *testing.T) {
	days := 14
	u, _ := build(t, 4, days)
	end := trace.Timestamp(0).AddSeconds(float64(days+1) * 86400)
	for _, s := range u.AllSessions() {
		if s.Start < 0 || s.Start > end {
			t.Fatalf("session outside span: %v", s)
		}
		if s.End <= s.Start {
			t.Fatalf("non-positive session: %v", s)
		}
	}
}

func TestPerAppSessionsSorted(t *testing.T) {
	u, _ := build(t, 5, 28)
	for pi, ss := range u.Sessions {
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End {
				t.Fatalf("app %d sessions unsorted/overlapping", pi)
			}
		}
	}
}

func TestNeverForegroundAppsHaveNoSessions(t *testing.T) {
	u, profiles := build(t, 6, 28)
	for pi, ss := range u.Sessions {
		if profiles[pi].NeverForeground && len(ss) > 0 {
			t.Errorf("%s has %d sessions but is never-foreground", profiles[pi].Label, len(ss))
		}
	}
}

func TestEngagementGapsProduceIdleDays(t *testing.T) {
	// Weibo-like profiles (UseDaysMean 2, GapDaysMean 11) must show long
	// streaks of unengaged days for at least some seeds.
	profiles := appmodel.AllProfiles()
	weiboIdx := -1
	for i := range profiles {
		if profiles[i].Package == appmodel.PkgWeibo {
			weiboIdx = i
			break
		}
	}
	if weiboIdx < 0 {
		t.Fatal("Weibo profile missing")
	}
	found := false
	for seed := uint64(0); seed < 30 && !found; seed++ {
		u := Build("u", rng.New(seed), profiles, DefaultConfig(0, 60))
		ed := u.EngagedDays[weiboIdx]
		if ed == nil {
			continue // not installed for this seed
		}
		run, maxRun := 0, 0
		for _, e := range ed {
			if !e {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
		}
		if maxRun >= 7 {
			found = true
		}
	}
	if !found {
		t.Error("no user showed a >=7-day Weibo idle streak in 30 seeds")
	}
}

func TestDiurnalSessions(t *testing.T) {
	u, _ := build(t, 7, 28)
	night, day := 0, 0
	for _, s := range u.AllSessions() {
		hour := int(s.Start.Seconds()/3600) % 24
		if hour >= 1 && hour < 6 {
			night++
		} else if hour >= 17 && hour < 22 {
			day++
		}
	}
	if night*3 > day {
		t.Errorf("too many night sessions: night=%d evening=%d", night, day)
	}
}

func TestStringSummary(t *testing.T) {
	u, _ := build(t, 8, 7)
	if u.String() == "" {
		t.Error("empty summary")
	}
}
