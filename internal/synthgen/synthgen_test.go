package synthgen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"netenergy/internal/appmodel"
	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

func smallCfg() Config {
	c := Small(2, 3)
	return c
}

func TestGenerateDeviceDeterministic(t *testing.T) {
	a := GenerateDevice(smallCfg(), 0)
	b := GenerateDevice(smallCfg(), 0)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Error("identical configs produced different bytes")
	}
}

func TestDevicesDiffer(t *testing.T) {
	a := GenerateDevice(smallCfg(), 0)
	b := GenerateDevice(smallCfg(), 1)
	if len(a.Records) == len(b.Records) {
		t.Log("same record count (possible but unlikely); checking content")
		ea, _ := a.Encode()
		eb, _ := b.Encode()
		if bytes.Equal(ea, eb) {
			t.Error("two users generated identical traces")
		}
	}
}

func TestRecordsSorted(t *testing.T) {
	dt := GenerateDevice(smallCfg(), 0)
	for i := 1; i < len(dt.Records); i++ {
		if dt.Records[i].TS < dt.Records[i-1].TS {
			t.Fatalf("records unsorted at %d", i)
		}
	}
}

func TestAppIDsStableAcrossDevices(t *testing.T) {
	a := GenerateDevice(smallCfg(), 0)
	b := GenerateDevice(smallCfg(), 1)
	if a.Apps.Len() != b.Apps.Len() {
		t.Fatalf("app table sizes differ: %d vs %d", a.Apps.Len(), b.Apps.Len())
	}
	for i := 0; i < a.Apps.Len(); i++ {
		if a.Apps.Name(uint32(i)) != b.Apps.Name(uint32(i)) {
			t.Fatalf("app %d differs: %q vs %q", i, a.Apps.Name(uint32(i)), b.Apps.Name(uint32(i)))
		}
	}
}

func TestTraceProcessable(t *testing.T) {
	dt := GenerateDevice(smallCfg(), 0)
	res, err := energy.Process(dt, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeErrors > 0 {
		t.Errorf("%d undecodable packets", res.DecodeErrors)
	}
	if res.Ledger.Total <= 0 {
		t.Error("no energy attributed")
	}
	if len(res.Packets) == 0 {
		t.Error("no packets")
	}
}

func TestRoundTripThroughDisk(t *testing.T) {
	dir := t.TempDir()
	fleet, err := GenerateFleet(smallCfg(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Paths) != 2 {
		t.Fatalf("fleet paths = %v", fleet.Paths)
	}
	count := 0
	err = fleet.EachDevice(func(dt *trace.DeviceTrace) error {
		count++
		if len(dt.Records) == 0 {
			t.Errorf("device %s empty", dt.Device)
		}
		res, err := energy.Process(dt, energy.DefaultOptions())
		if err != nil {
			return err
		}
		if res.DecodeErrors > 0 {
			t.Errorf("device %s: %d decode errors after disk round trip", dt.Device, res.DecodeErrors)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("visited %d devices", count)
	}
}

func TestWiFiPeriodsProduceWiFiPackets(t *testing.T) {
	cfg := smallCfg()
	cfg.NightlyWiFiProb = 1.0
	cfg.Days = 5
	dt := GenerateDevice(cfg, 0)
	wifi, cell := 0, 0
	for i := range dt.Records {
		if r := &dt.Records[i]; r.Type == trace.RecPacket {
			if r.Net == trace.NetWiFi {
				wifi++
			} else {
				cell++
			}
		}
	}
	if wifi == 0 {
		t.Error("no WiFi packets despite nightly WiFi")
	}
	if cell == 0 {
		t.Error("no cellular packets")
	}
	if wifi > cell {
		t.Errorf("wifi (%d) should not dominate cellular (%d) for daytime-heavy traffic", wifi, cell)
	}
}

func TestBackgroundEnergyDominates(t *testing.T) {
	// The headline calibration target: background states should take the
	// large majority of cellular energy even on a small fleet.
	cfg := Small(3, 7)
	var ledgers []*energy.Ledger
	for i := 0; i < cfg.Users; i++ {
		dt := GenerateDevice(cfg, i)
		res, err := energy.Process(dt, energy.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ledgers = append(ledgers, res.Ledger)
	}
	m := energy.MergeLedgers(ledgers)
	f := m.BackgroundFraction()
	if f < 0.6 || f > 0.97 {
		t.Errorf("background fraction = %.2f, want in [0.6, 0.97]", f)
	}
}

func TestNamedAppsPresentAcrossFleet(t *testing.T) {
	cfg := Small(6, 3)
	seen := map[string]bool{}
	for i := 0; i < cfg.Users; i++ {
		dt := GenerateDevice(cfg, i)
		byApp := map[uint32]int{}
		for j := range dt.Records {
			if r := &dt.Records[j]; r.Type == trace.RecPacket {
				byApp[r.App]++
			}
		}
		for app, n := range byApp {
			if n > 0 {
				seen[dt.Apps.Name(app)] = true
			}
		}
	}
	// Universal apps must appear on (nearly) every device.
	for _, pkg := range []string{appmodel.PkgSamsungPush, appmodel.PkgPlus, appmodel.PkgMediaServer} {
		if !seen[pkg] {
			t.Errorf("universal app %s generated no traffic on any device", pkg)
		}
	}
}

func TestConfigEnd(t *testing.T) {
	c := Small(1, 2)
	if got := c.End().Sub(c.Start); got != 2*86400 {
		t.Errorf("span = %v s", got)
	}
}

func TestCompressedFleetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()
	cfg.Compress = true
	fleet, err := GenerateFleet(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Compressed files must be readable transparently and smaller than the
	// plain form of the same trace.
	dt, err := trace.ReadFile(fleet.Paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(dt.Records) == 0 {
		t.Fatal("compressed trace empty")
	}
	plain, err := dt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(fleet.Paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(plain)) {
		t.Errorf("compressed %d bytes >= plain %d", st.Size(), len(plain))
	}
}

// TestBlockedFleetRoundTrip: Config.Format routes a fleet into the METR-2
// blocked container; the traces read back identically to flat generation.
func TestBlockedFleetRoundTrip(t *testing.T) {
	cfg := smallCfg()
	refDir, blkDir := t.TempDir(), t.TempDir()
	if _, err := GenerateFleet(cfg, refDir); err != nil {
		t.Fatal(err)
	}
	cfg.Format = trace.FormatBlocked
	if cfg.ContainerFormat() != trace.FormatBlocked {
		t.Fatalf("ContainerFormat = %v", cfg.ContainerFormat())
	}
	fleet, err := GenerateFleet(cfg, blkDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadFile(fleet.Paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if f, err := trace.DetectFileFormat(fleet.Paths[0]); err != nil || f != trace.FormatBlocked {
		t.Fatalf("DetectFileFormat = %v, %v", f, err)
	}
	want, err := trace.ReadFile(filepath.Join(refDir, filepath.Base(fleet.Paths[0])))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		a, b := &want.Records[i], &got.Records[i]
		if a.Type != b.Type || a.TS != b.TS || a.App != b.App ||
			!bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("record %d differs: %v vs %v", i, a, b)
		}
	}
}

// TestContainerFormatLegacyCompress: the legacy Compress switch still
// selects deflate when Format is unset.
func TestContainerFormatLegacyCompress(t *testing.T) {
	var cfg Config
	if cfg.ContainerFormat() != trace.FormatFlat {
		t.Errorf("zero config -> %v, want flat", cfg.ContainerFormat())
	}
	cfg.Compress = true
	if cfg.ContainerFormat() != trace.FormatDeflate {
		t.Errorf("Compress -> %v, want deflate", cfg.ContainerFormat())
	}
	cfg.Format = trace.FormatBlocked
	if cfg.ContainerFormat() != trace.FormatBlocked {
		t.Errorf("Format overrides Compress: got %v", cfg.ContainerFormat())
	}
}

func TestVacationSilence(t *testing.T) {
	cfg := Small(1, 20)
	cfg.VacationProb = 1.0
	dt := GenerateDevice(cfg, 0)
	// Find the longest packet-free gap; a 2-7 day vacation must appear.
	var prev trace.Timestamp
	var maxGap float64
	first := true
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		if !first {
			if gap := r.TS.Sub(prev); gap > maxGap {
				maxGap = gap
			}
		}
		prev = r.TS
		first = false
	}
	if maxGap < 1.8*86400 {
		t.Errorf("max silent gap = %.1f days, want >= ~2 (vacation)", maxGap/86400)
	}
}
