// Package synthgen generates the study dataset: a fleet of device traces
// that stand in for the paper's proprietary 20-user, 623-day capture.
//
// Every device trace contains the same record streams the paper's collector
// produced — serialised packets with packet→process mappings, process-state
// transitions, UI events and screen events — produced by the app behaviour
// models (internal/appmodel) driven by per-user schedules
// (internal/usermodel). All randomness derives from a single seed, so a
// dataset is reproducible bit-for-bit.
//
// The default configuration uses 20 users and 126 days rather than the
// paper's 623 days, purely to bound dataset size; all rates (updates/day,
// flows/day, sessions/day) match the paper's reported values, so per-day
// statistics are directly comparable (documented in DESIGN.md).
package synthgen

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"netenergy/internal/appmodel"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
	"netenergy/internal/usermodel"
)

// Config controls dataset synthesis.
type Config struct {
	Seed  uint64
	Users int
	Days  int
	Start trace.Timestamp
	// Profiles is the app population; nil means appmodel.AllProfiles().
	Profiles []appmodel.Profile
	// ActivityScale is forwarded to the user model (1.0 = calibrated
	// default activity level).
	ActivityScale float64
	// NightlyWiFiProb is the chance a given night (23:00-06:30) is spent
	// on home WiFi; that traffic is recorded but not billed as cellular.
	NightlyWiFiProb float64
	// Snaplen is the capture snap length (0: appmodel.DefaultSnaplen).
	Snaplen int
	// RetransmitProb is the per-segment TCP retransmission probability.
	RetransmitProb float64
	// EmitDNS enables DNS query/response traffic before uncached
	// connections (on by default in Default()).
	EmitDNS bool
	// Compress writes traces in the DEFLATE-compressed METR container;
	// readers auto-detect either form. Legacy switch — Format supersedes
	// it when set to anything other than FormatFlat.
	Compress bool
	// Format selects the on-disk container (flat, deflate or the blocked
	// METR-2 container). The zero value defers to Compress, keeping old
	// configs working unchanged.
	Format trace.Format
	// VacationProb is the chance a user takes one trip during the study
	// with the device off (or out of coverage) for 2-7 days: a span of
	// total radio silence, the strongest form of the §5 idle periods.
	VacationProb float64
}

// studyStart is 2012-12-01 UTC, the month the paper's collection began.
const studyStart = trace.Timestamp(1354320000 * 1_000_000)

// Default returns the full-study configuration: 20 users, 126 days.
func Default() Config {
	return Config{
		Seed: 20151028, Users: 20, Days: 126, Start: studyStart,
		ActivityScale: 1, NightlyWiFiProb: 0.25, RetransmitProb: 0.01,
		EmitDNS: true, VacationProb: 0.35,
	}
}

// Small returns a reduced configuration for tests and quick examples.
func Small(users, days int) Config {
	c := Default()
	c.Users = users
	c.Days = days
	return c
}

// End returns the end timestamp of the configured span.
func (c Config) End() trace.Timestamp {
	return c.Start.AddSeconds(float64(c.Days) * 86400)
}

// ContainerFormat resolves the on-disk container from Format with the
// legacy Compress switch as fallback.
func (c Config) ContainerFormat() trace.Format {
	if c.Format != trace.FormatFlat {
		return c.Format
	}
	if c.Compress {
		return trace.FormatDeflate
	}
	return trace.FormatFlat
}

func (c Config) profiles() []appmodel.Profile {
	if c.Profiles != nil {
		return c.Profiles
	}
	return appmodel.AllProfiles()
}

// DeviceID formats the canonical device name for user index i.
func DeviceID(i int) string { return fmt.Sprintf("u%02d", i) }

// GenerateDevice synthesises the full trace for one user index. App IDs are
// interned in profile order on every device, so IDs are comparable across
// the fleet.
func GenerateDevice(cfg Config, userIdx int) *trace.DeviceTrace {
	profiles := cfg.profiles()
	// Independent, stable per-user stream.
	src := rng.New(cfg.Seed ^ (uint64(userIdx)+1)*0x9e3779b97f4a7c15)

	dt := &trace.DeviceTrace{Device: DeviceID(userIdx), Start: cfg.Start, Apps: trace.NewAppTable()}
	for i := range profiles {
		id := dt.Apps.Intern(profiles[i].Package)
		dt.Records = append(dt.Records, trace.Record{
			Type: trace.RecAppName, TS: cfg.Start, App: id, AppName: profiles[i].Package,
		})
	}

	ucfg := usermodel.Config{Start: cfg.Start, Days: cfg.Days, ActivityScale: cfg.ActivityScale}
	if ucfg.ActivityScale == 0 {
		ucfg.ActivityScale = 1
	}
	user := usermodel.Build(dt.Device, src.Split(), profiles, ucfg)

	g := appmodel.NewGen(dt, src.Split())
	if cfg.Snaplen > 0 {
		g.Snaplen = cfg.Snaplen
	}
	g.WiFiPeriods = nightlyWiFi(src.Split(), cfg)
	g.ActivePeriods = user.AllSessions()
	g.RetransmitProb = cfg.RetransmitProb
	g.EmitDNS = cfg.EmitDNS

	end := cfg.End()
	for _, pi := range user.Installed {
		p := &profiles[pi]
		appID := dt.Apps.Intern(p.Package)
		p.Behavior.Generate(g, appID, user.Sessions[pi], cfg.Start, end)
	}

	// Screen events around the user's merged usage timeline.
	for _, s := range user.AllSessions() {
		g.Screen(s.Start, true)
		g.Screen(s.End.AddSeconds(5), false)
	}

	// Vacation: the device is off for a multi-day span — drop every record
	// inside it (no packets, no state changes, no screen events).
	if cfg.VacationProb > 0 {
		vsrc := rng.New(cfg.Seed ^ 0xabcdef ^ uint64(userIdx)*7919)
		if vsrc.Bool(cfg.VacationProb) && cfg.Days > 10 {
			startDay := 3 + vsrc.Intn(cfg.Days-10)
			length := 2 + vsrc.Intn(6)
			vStart := cfg.Start.AddSeconds(float64(startDay) * 86400)
			vEnd := vStart.AddSeconds(float64(length) * 86400)
			kept := dt.Records[:0]
			for i := range dt.Records {
				r := dt.Records[i]
				if r.TS >= vStart && r.TS < vEnd && r.Type != trace.RecAppName {
					continue
				}
				kept = append(kept, r)
			}
			dt.Records = kept
		}
	}

	dt.SortByTime()
	return dt
}

// nightlyWiFi builds the sorted WiFi spans: each night 23:00-06:30 is on
// WiFi with the configured probability.
func nightlyWiFi(src *rng.Source, cfg Config) []appmodel.Session {
	var out []appmodel.Session
	for d := 0; d < cfg.Days; d++ {
		if !src.Bool(cfg.NightlyWiFiProb) {
			continue
		}
		start := cfg.Start.AddSeconds(float64(d)*86400 + 23*3600)
		out = append(out, appmodel.Session{Start: start, End: start.AddSeconds(7.5 * 3600)})
	}
	return out
}

// GenerateFleet writes one METR file per user into dir and returns the
// opened fleet. Existing files are overwritten. Devices are generated in
// parallel (each user's randomness is an independent stream, so the output
// is identical to sequential generation).
func GenerateFleet(cfg Config, dir string) (*trace.Fleet, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	errs := make([]error, cfg.Users)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dt := GenerateDevice(cfg, i)
			path := filepath.Join(dir, dt.Device+".metr")
			f, err := os.Create(path)
			if err != nil {
				errs[i] = err
				return
			}
			if err := dt.SerializeFormat(f, cfg.ContainerFormat()); err != nil {
				f.Close()
				errs[i] = fmt.Errorf("synthgen: writing %s: %w", path, err)
				return
			}
			errs[i] = f.Close()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trace.OpenFleet(dir)
}

// GenerateInMemory returns all device traces without touching disk — used
// by tests, benches and the examples. Devices generate in parallel; the
// result is deterministic because every user has an independent seed.
func GenerateInMemory(cfg Config) []*trace.DeviceTrace {
	out := make([]*trace.DeviceTrace, cfg.Users)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = GenerateDevice(cfg, i)
		}(i)
	}
	wg.Wait()
	return out
}

// maxParallel bounds generation concurrency: device synthesis is memory
// hungry (one full device trace in flight per worker).
func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n > 6 {
		n = 6
	}
	if n < 1 {
		n = 1
	}
	return n
}
