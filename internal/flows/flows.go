// Package flows assembles per-app network flows from decoded packets.
//
// A flow is the unit the paper's Table 1 reports on ("energy per flow"):
// all packets sharing a canonical five-tuple, split whenever the tuple goes
// quiet for longer than an inactivity timeout. The assembler also tracks
// how many bytes each flow moved while its app was in foreground vs
// background process states, which §4.1's persistence analysis needs.
package flows

import (
	"sort"

	"netenergy/internal/netparse"
	"netenergy/internal/trace"
)

// PacketInfo is the per-packet input to the assembler: decoded addressing
// plus the collector-side metadata and the energy already attributed to the
// packet by the energy engine.
type PacketInfo struct {
	TS     trace.Timestamp
	App    uint32
	Tuple  netparse.FiveTuple // canonicalised by Add
	Dir    trace.Direction
	Bytes  int // wire bytes
	State  trace.ProcState
	Energy float64 // joules attributed to this packet
}

// Flow is one assembled flow.
type Flow struct {
	Tuple      netparse.FiveTuple
	App        uint32
	Start, End trace.Timestamp
	Packets    int
	BytesUp    int64
	BytesDown  int64
	Energy     float64 // J, sum over packets
	FgBytes    int64   // bytes moved while app was foreground/visible
	BgBytes    int64   // bytes moved while app was in a background state
	StartState trace.ProcState
}

// Bytes returns total bytes in both directions.
func (f *Flow) Bytes() int64 { return f.BytesUp + f.BytesDown }

// Duration returns the flow's duration in seconds.
func (f *Flow) Duration() float64 { return f.End.Sub(f.Start) }

// StartedForeground reports whether the flow's first packet was sent while
// the app was in a foreground state — the §4.1 "foreground traffic not
// terminated" analysis selects these.
func (f *Flow) StartedForeground() bool { return f.StartState.IsForeground() }

// Config controls flow assembly.
type Config struct {
	// InactivityTimeout splits a five-tuple into separate flows when no
	// packet is seen for this many seconds. Zero means never split.
	InactivityTimeout float64
}

// DefaultConfig uses a 30-minute inactivity timeout, long enough to keep a
// periodic poller's connection-reuse pattern in one flow while still
// splitting genuinely separate connections.
func DefaultConfig() Config { return Config{InactivityTimeout: 1800} }

// Assembler groups packets into flows. Feed packets in timestamp order via
// Add, then call Flows once. Not safe for concurrent use.
type Assembler struct {
	cfg    Config
	active map[netparse.FiveTuple]*Flow
	done   []*Flow
}

// NewAssembler returns an Assembler with the given config.
func NewAssembler(cfg Config) *Assembler {
	return &Assembler{cfg: cfg, active: make(map[netparse.FiveTuple]*Flow)}
}

// Add incorporates one packet.
func (a *Assembler) Add(p PacketInfo) {
	key := p.Tuple.Canonical()
	f, ok := a.active[key]
	if ok && a.cfg.InactivityTimeout > 0 && p.TS.Sub(f.End) > a.cfg.InactivityTimeout {
		a.done = append(a.done, f)
		ok = false
	}
	if !ok {
		f = &Flow{Tuple: key, App: p.App, Start: p.TS, End: p.TS, StartState: p.State}
		a.active[key] = f
	}
	f.End = p.TS
	f.Packets++
	if p.Dir == trace.DirUp {
		f.BytesUp += int64(p.Bytes)
	} else {
		f.BytesDown += int64(p.Bytes)
	}
	f.Energy += p.Energy
	if p.State.IsForeground() {
		f.FgBytes += int64(p.Bytes)
	} else if p.State.IsBackground() {
		f.BgBytes += int64(p.Bytes)
	}
}

// Flows finalises assembly and returns all flows sorted by start time.
// The assembler can keep accepting packets afterwards; subsequent calls
// return the updated set.
func (a *Assembler) Flows() []*Flow {
	out := make([]*Flow, 0, len(a.done)+len(a.active))
	out = append(out, a.done...)
	for _, f := range a.active {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Tuple.FastHash() < out[j].Tuple.FastHash()
	})
	return out
}

// ByApp groups flows by app ID.
func ByApp(fs []*Flow) map[uint32][]*Flow {
	out := make(map[uint32][]*Flow)
	for _, f := range fs {
		out[f.App] = append(out[f.App], f)
	}
	return out
}

// ActiveAt returns the flows in fs that span ts (Start <= ts <= End).
func ActiveAt(fs []*Flow, ts trace.Timestamp) []*Flow {
	var out []*Flow
	for _, f := range fs {
		if f.Start <= ts && f.End >= ts {
			out = append(out, f)
		}
	}
	return out
}
