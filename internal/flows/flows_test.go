package flows

import (
	"testing"
	"testing/quick"

	"netenergy/internal/netparse"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

const sec = trace.Timestamp(1_000_000)

func tuple(port uint16) netparse.FiveTuple {
	a := netparse.NewEndpoint(netparse.EndpointIPv4, []byte{10, 0, 0, 1})
	b := netparse.NewEndpoint(netparse.EndpointIPv4, []byte{93, 184, 216, 34})
	return netparse.FiveTuple{AddrA: a, AddrB: b, PortA: port, PortB: 443, Proto: netparse.IPProtoTCP}
}

func TestAssemblerSingleFlow(t *testing.T) {
	a := NewAssembler(DefaultConfig())
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(1000), Dir: trace.DirUp, Bytes: 100, State: trace.StateForeground, Energy: 2})
	a.Add(PacketInfo{TS: 5 * sec, App: 1, Tuple: tuple(1000), Dir: trace.DirDown, Bytes: 1400, State: trace.StateBackground, Energy: 3})
	fs := a.Flows()
	if len(fs) != 1 {
		t.Fatalf("flows = %d", len(fs))
	}
	f := fs[0]
	if f.Packets != 2 || f.BytesUp != 100 || f.BytesDown != 1400 {
		t.Errorf("flow stats: %+v", f)
	}
	if f.Energy != 5 {
		t.Errorf("energy = %v", f.Energy)
	}
	if f.FgBytes != 100 || f.BgBytes != 1400 {
		t.Errorf("fg/bg bytes = %d/%d", f.FgBytes, f.BgBytes)
	}
	if !f.StartedForeground() {
		t.Error("flow started in foreground")
	}
	if f.Duration() != 5 {
		t.Errorf("duration = %v", f.Duration())
	}
	if f.Bytes() != 1500 {
		t.Errorf("bytes = %d", f.Bytes())
	}
}

func TestAssemblerBidirectionalMerges(t *testing.T) {
	a := NewAssembler(DefaultConfig())
	fwd := tuple(2000)
	rev := netparse.FiveTuple{AddrA: fwd.AddrB, AddrB: fwd.AddrA, PortA: fwd.PortB, PortB: fwd.PortA, Proto: fwd.Proto}
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: fwd, Dir: trace.DirUp, Bytes: 10})
	a.Add(PacketInfo{TS: sec, App: 1, Tuple: rev, Dir: trace.DirDown, Bytes: 20})
	if fs := a.Flows(); len(fs) != 1 {
		t.Fatalf("both directions should form one flow, got %d", len(fs))
	}
}

func TestAssemblerTimeoutSplits(t *testing.T) {
	a := NewAssembler(Config{InactivityTimeout: 60})
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(3000), Bytes: 1})
	a.Add(PacketInfo{TS: 30 * sec, App: 1, Tuple: tuple(3000), Bytes: 1})
	a.Add(PacketInfo{TS: 200 * sec, App: 1, Tuple: tuple(3000), Bytes: 1}) // 170 s gap > 60
	fs := a.Flows()
	if len(fs) != 2 {
		t.Fatalf("want 2 flows after timeout split, got %d", len(fs))
	}
	if fs[0].Packets != 2 || fs[1].Packets != 1 {
		t.Errorf("split sizes: %d/%d", fs[0].Packets, fs[1].Packets)
	}
}

func TestAssemblerZeroTimeoutNeverSplits(t *testing.T) {
	a := NewAssembler(Config{InactivityTimeout: 0})
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(1), Bytes: 1})
	a.Add(PacketInfo{TS: 1_000_000 * sec, App: 1, Tuple: tuple(1), Bytes: 1})
	if fs := a.Flows(); len(fs) != 1 {
		t.Fatalf("zero timeout split flows: %d", len(fs))
	}
}

func TestAssemblerDistinctTuples(t *testing.T) {
	a := NewAssembler(DefaultConfig())
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(1000), Bytes: 1})
	a.Add(PacketInfo{TS: sec, App: 2, Tuple: tuple(1001), Bytes: 1})
	fs := a.Flows()
	if len(fs) != 2 {
		t.Fatalf("flows = %d", len(fs))
	}
}

func TestFlowsSortedByStart(t *testing.T) {
	a := NewAssembler(DefaultConfig())
	a.Add(PacketInfo{TS: 10 * sec, App: 1, Tuple: tuple(2), Bytes: 1})
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(1), Bytes: 1})
	fs := a.Flows()
	if fs[0].Start != 0 || fs[1].Start != 10*sec {
		t.Errorf("not sorted: %v %v", fs[0].Start, fs[1].Start)
	}
}

func TestByApp(t *testing.T) {
	a := NewAssembler(DefaultConfig())
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(1), Bytes: 1})
	a.Add(PacketInfo{TS: 0, App: 2, Tuple: tuple(2), Bytes: 1})
	a.Add(PacketInfo{TS: 0, App: 2, Tuple: tuple(3), Bytes: 1})
	m := ByApp(a.Flows())
	if len(m[1]) != 1 || len(m[2]) != 2 {
		t.Errorf("ByApp = %v", m)
	}
}

func TestActiveAt(t *testing.T) {
	a := NewAssembler(DefaultConfig())
	a.Add(PacketInfo{TS: 0, App: 1, Tuple: tuple(1), Bytes: 1})
	a.Add(PacketInfo{TS: 100 * sec, App: 1, Tuple: tuple(1), Bytes: 1})
	a.Add(PacketInfo{TS: 200 * sec, App: 1, Tuple: tuple(2), Bytes: 1})
	fs := a.Flows()
	if got := ActiveAt(fs, 50*sec); len(got) != 1 {
		t.Errorf("ActiveAt(50) = %d flows", len(got))
	}
	if got := ActiveAt(fs, 150*sec); len(got) != 0 {
		t.Errorf("ActiveAt(150) = %d flows", len(got))
	}
	if got := ActiveAt(fs, 200*sec); len(got) != 1 {
		t.Errorf("ActiveAt(200) = %d flows", len(got))
	}
}

func TestConservationProperty(t *testing.T) {
	// Total bytes, packets, and energy across flows must equal the inputs.
	src := rng.New(55)
	f := func(n uint8) bool {
		a := NewAssembler(Config{InactivityTimeout: 45})
		count := int(n)%200 + 1
		var wantBytes int64
		var wantEnergy float64
		ts := trace.Timestamp(0)
		for i := 0; i < count; i++ {
			ts += trace.Timestamp(src.Exp(20) * 1e6)
			b := 1 + src.Intn(1400)
			e := src.Float64()
			wantBytes += int64(b)
			wantEnergy += e
			a.Add(PacketInfo{
				TS: ts, App: uint32(src.Intn(5)), Tuple: tuple(uint16(src.Intn(8))),
				Dir: trace.Direction(src.Intn(2)), Bytes: b,
				State: trace.ProcState(1 + src.Intn(5)), Energy: e,
			})
		}
		var gotBytes int64
		var gotEnergy float64
		gotPkts := 0
		for _, fl := range a.Flows() {
			gotBytes += fl.Bytes()
			gotEnergy += fl.Energy
			gotPkts += fl.Packets
			if fl.End < fl.Start {
				return false
			}
			if fl.FgBytes+fl.BgBytes > fl.Bytes() {
				return false
			}
		}
		return gotBytes == wantBytes && gotPkts == count &&
			gotEnergy > wantEnergy-1e-9 && gotEnergy < wantEnergy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
