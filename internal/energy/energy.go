// Package energy implements the study's accounting engine: it replays a
// device's packet trace through a radio power model and attributes every
// joule to an (app, process state, day) triple.
//
// Attribution follows the paper §3.1: promotion and transfer energy belong
// to the packet that caused them; tail energy is assigned to the app of the
// last packet sent before the tail, so concurrent flows never double-count.
// The invariant Σ(per-app energy) == device total holds by construction and
// is enforced by property tests.
package energy

import (
	"fmt"

	"netenergy/internal/appproto"
	"netenergy/internal/netparse"
	"netenergy/internal/radio"
	"netenergy/internal/trace"
)

// Packet is one decoded, energy-attributed packet from a device trace.
type Packet struct {
	TS     trace.Timestamp
	App    uint32
	Dir    trace.Direction
	State  trace.ProcState
	Bytes  int // wire bytes (decoded IP total length)
	Tuple  netparse.FiveTuple
	Energy float64 // joules attributed to this packet (incl. its tail share)
	// Seq is the TCP sequence number (0 for non-TCP packets), used by the
	// retransmission analysis.
	Seq uint32
	// Host is the HTTP Host header parsed from the captured payload of
	// uplink request packets ("" when absent or truncated). Host strings
	// are interned, so identical hosts share storage.
	Host string
}

// DayStats aggregates one app's activity on one day.
type DayStats struct {
	Energy   float64
	FgEnergy float64 // energy attributed while the app was foreground/visible
	BgEnergy float64
	FgBytes  int64
	BgBytes  int64
	Packets  int
}

// Ledger is the aggregated energy accounting for one device.
type Ledger struct {
	Total      float64
	ByApp      map[uint32]float64
	ByState    map[trace.ProcState]float64
	ByAppState map[uint32]map[trace.ProcState]float64
	ByAppDay   map[uint32]map[int]*DayStats
	BytesByApp map[uint32]int64
	// IdleEnergy is the baseline paging energy over the trace span; it is
	// reported separately and never attributed to apps.
	IdleEnergy float64

	// Hot-path memo: packets arrive in runs from one app within one day,
	// so the inner attribution maps for the last (app, day) pair are
	// cached, collapsing the nested lookups (and their not-yet-present
	// checks) to one compare on repeat hits. memoAS == nil means invalid.
	// Safe across Merge: inner maps and DayStats pointers are only ever
	// added to, never replaced.
	memoApp uint32
	memoDay int
	memoAS  map[trace.ProcState]float64
	memoDS  *DayStats
}

// NewLedger returns an empty Ledger, for callers that accumulate charges
// directly (the streaming analyzer).
func NewLedger() *Ledger { return newLedger() }

func newLedger() *Ledger {
	return &Ledger{
		ByApp:      make(map[uint32]float64),
		ByState:    make(map[trace.ProcState]float64),
		ByAppState: make(map[uint32]map[trace.ProcState]float64),
		ByAppDay:   make(map[uint32]map[int]*DayStats),
		BytesByApp: make(map[uint32]int64),
	}
}

// Charge adds e joules to the (app, state, day) triple.
func (l *Ledger) Charge(app uint32, state trace.ProcState, day int, e float64) {
	l.charge(app, state, day, e)
}

// AddPacket records a packet's byte accounting (without energy).
func (l *Ledger) AddPacket(app uint32, day int, state trace.ProcState, wireBytes int64) {
	_, ds := l.hot(app, day)
	ds.Packets++
	if state.IsForeground() {
		ds.FgBytes += wireBytes
	} else {
		ds.BgBytes += wireBytes
	}
	l.BytesByApp[app] += wireBytes
}

// charge adds e joules to the (app, state, day) triple.
func (l *Ledger) charge(app uint32, state trace.ProcState, day int, e float64) {
	as, ds := l.hot(app, day)
	l.Total += e
	l.ByApp[app] += e
	l.ByState[state] += e
	as[state] += e
	ds.Energy += e
	if state.IsForeground() {
		ds.FgEnergy += e
	} else {
		ds.BgEnergy += e
	}
}

// hot returns the (app, day) attribution targets — the per-app state map
// and per-day stats — through the one-entry memo.
func (l *Ledger) hot(app uint32, day int) (map[trace.ProcState]float64, *DayStats) {
	if l.memoAS != nil && app == l.memoApp && day == l.memoDay {
		return l.memoAS, l.memoDS
	}
	as := l.ByAppState[app]
	if as == nil {
		as = make(map[trace.ProcState]float64)
		l.ByAppState[app] = as
	}
	ds := l.dayStats(app, day)
	l.memoApp, l.memoDay, l.memoAS, l.memoDS = app, day, as, ds
	return as, ds
}

func (l *Ledger) dayStats(app uint32, day int) *DayStats {
	ad := l.ByAppDay[app]
	if ad == nil {
		ad = make(map[int]*DayStats)
		l.ByAppDay[app] = ad
	}
	ds := ad[day]
	if ds == nil {
		ds = &DayStats{}
		ad[day] = ds
	}
	return ds
}

// BackgroundFraction returns the fraction of attributed energy consumed in
// background states (perceptible, service, background) — the paper's
// headline "84% of cellular network energy" number.
func (l *Ledger) BackgroundFraction() float64 {
	if l.Total == 0 {
		return 0
	}
	// Sum in fixed state order, not map order: float addition is not
	// associative, so map-iteration sums make the headline differ in the
	// last ulp between identical ledgers (the columnar equivalence harness
	// compares it bit-for-bit).
	var bg float64
	for _, s := range trace.AllStates {
		if s.IsBackground() {
			bg += l.ByState[s]
		}
	}
	return bg / l.Total
}

// StateFraction returns the fraction of energy consumed in state s.
func (l *Ledger) StateFraction(s trace.ProcState) float64 {
	if l.Total == 0 {
		return 0
	}
	return l.ByState[s] / l.Total
}

// AppBackgroundFraction returns the fraction of an app's energy consumed in
// background states (Chrome's ~30% in §4.1).
func (l *Ledger) AppBackgroundFraction(app uint32) float64 {
	total := l.ByApp[app]
	if total == 0 {
		return 0
	}
	// Fixed state order for the same reason as BackgroundFraction.
	var bg float64
	as := l.ByAppState[app]
	for _, s := range trace.AllStates {
		if s.IsBackground() {
			bg += as[s]
		}
	}
	return bg / total
}

// Options configures Process.
type Options struct {
	// Radio is the power model to replay against. Zero value means LTE.
	Radio radio.Params
	// Network selects which interface's packets to account (the study
	// focuses on cellular).
	Network trace.Network
	// KeepPackets controls whether the per-packet slice is returned;
	// aggregate-only callers can save the memory.
	KeepPackets bool
	// VerifyChecksums forwards to the packet parser.
	VerifyChecksums bool
	// Snap forwards to the packet parser: accept snap-length-truncated
	// captures and account their true wire length.
	Snap bool
}

// DefaultOptions accounts cellular traffic against the LTE model and keeps
// per-packet results.
func DefaultOptions() Options {
	return Options{Radio: radio.LTE(), Network: trace.NetCellular, KeepPackets: true, VerifyChecksums: true, Snap: true}
}

// Result is the outcome of processing one device trace.
type Result struct {
	Device       string
	Ledger       *Ledger
	Packets      []Packet // nil unless Options.KeepPackets
	DecodeErrors int      // packets skipped because they failed to parse
	Span         [2]trace.Timestamp
}

// Process replays all matching packet records of dt through the radio model
// and returns the energy attribution. Records must be in timestamp order
// (DeviceTrace.SortByTime establishes this).
func Process(dt *trace.DeviceTrace, opts Options) (*Result, error) {
	if opts.Radio.Name == "" {
		opts.Radio = radio.LTE()
	}
	res := &Result{Device: dt.Device, Ledger: newLedger()}
	hosts := hostInterner{}
	parser := netparse.NewParser()
	parser.VerifyChecksums = opts.VerifyChecksums
	parser.Snap = opts.Snap
	acct := radio.NewAccountant(opts.Radio)

	// Previous packet's attribution target, for tail charges.
	var prevApp uint32
	var prevState trace.ProcState
	var prevDay int
	havePrev := false
	first, last := trace.Timestamp(0), trace.Timestamp(0)

	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket || r.Net != opts.Network {
			continue
		}
		d, err := parser.DecodePacket(r.Payload)
		if err != nil {
			res.DecodeErrors++
			continue
		}
		if !havePrev {
			first = r.TS
		}
		last = r.TS

		dir := radio.Down
		if r.Dir == trace.DirUp {
			dir = radio.Up
		}
		c := acct.OnPacket(r.TS.Seconds(), d.WireLen, dir)
		day := r.TS.Day()

		if c.GapTail > 0 && havePrev {
			res.Ledger.charge(prevApp, prevState, prevDay, c.GapTail)
			if opts.KeepPackets {
				res.Packets[len(res.Packets)-1].Energy += c.GapTail
			}
		} else if c.GapTail > 0 {
			// Defensive: a gap charge with no previous packet cannot occur
			// (the accountant charges no gap on the first packet), but if
			// it did, attribute it to the current packet rather than drop.
			res.Ledger.charge(r.App, r.State, day, c.GapTail)
		}
		own := c.Promotion + c.Transfer
		res.Ledger.charge(r.App, r.State, day, own)
		ds := res.Ledger.dayStats(r.App, day)
		ds.Packets++
		if r.State.IsForeground() {
			ds.FgBytes += int64(d.WireLen)
		} else {
			ds.BgBytes += int64(d.WireLen)
		}
		res.Ledger.BytesByApp[r.App] += int64(d.WireLen)

		if opts.KeepPackets {
			host := ""
			if r.Dir == trace.DirUp && appproto.IsRequest(d.Payload) {
				if h, ok := appproto.ParseHost(d.Payload); ok {
					host = hosts.intern(h)
				}
			}
			var seq uint32
			if d.Transport == netparse.LayerTypeTCP {
				seq = d.TCP.Seq
			}
			res.Packets = append(res.Packets, Packet{
				TS: r.TS, App: r.App, Dir: r.Dir, State: r.State,
				Bytes: d.WireLen, Tuple: d.Tuple.Canonical(), Energy: own,
				Seq: seq, Host: host,
			})
		}

		prevApp, prevState, prevDay = r.App, r.State, day
		havePrev = true
	}

	// Final tail belongs to the last packet.
	if fin := acct.Finish(); fin > 0 && havePrev {
		res.Ledger.charge(prevApp, prevState, prevDay, fin)
		if opts.KeepPackets && len(res.Packets) > 0 {
			res.Packets[len(res.Packets)-1].Energy += fin
		}
	}

	res.Ledger.IdleEnergy = opts.Radio.IdlePower * last.Sub(first)
	res.Span = [2]trace.Timestamp{first, last}
	return res, nil
}

// hostInterner deduplicates host strings across millions of packets.
type hostInterner map[string]string

func (h hostInterner) intern(s string) string {
	if v, ok := h[s]; ok {
		return v
	}
	h[s] = s
	return s
}

// ProcessFleet runs Process over every device in the fleet and returns the
// per-device results in path order.
func ProcessFleet(fleet *trace.Fleet, opts Options) ([]*Result, error) {
	var out []*Result
	err := fleet.EachDevice(func(dt *trace.DeviceTrace) error {
		r, err := Process(dt, opts)
		if err != nil {
			return fmt.Errorf("energy: device %s: %w", dt.Device, err)
		}
		out = append(out, r)
		return nil
	})
	return out, err
}

// MergeLedgers sums per-device ledgers into one fleet-wide ledger. App IDs
// must be comparable across devices (the generator interns app names with
// the same table ordering on every device; callers merging heterogeneous
// traces should remap IDs first).
func MergeLedgers(ls []*Ledger) *Ledger {
	m := newLedger()
	for _, l := range ls {
		m.Merge(l)
	}
	return m
}

// Merge adds the contents of other into l in place. The streaming fleet
// aggregator and the ingest shards use it to fold per-device ledgers into a
// running fleet total without reallocating.
func (l *Ledger) Merge(other *Ledger) {
	l.Total += other.Total
	l.IdleEnergy += other.IdleEnergy
	for app, e := range other.ByApp {
		l.ByApp[app] += e
	}
	for s, e := range other.ByState {
		l.ByState[s] += e
	}
	for app, as := range other.ByAppState {
		dst := l.ByAppState[app]
		if dst == nil {
			dst = make(map[trace.ProcState]float64)
			l.ByAppState[app] = dst
		}
		for s, e := range as {
			dst[s] += e
		}
	}
	for app, days := range other.ByAppDay {
		for day, ds := range days {
			dst := l.dayStats(app, day)
			dst.Energy += ds.Energy
			dst.FgEnergy += ds.FgEnergy
			dst.BgEnergy += ds.BgEnergy
			dst.FgBytes += ds.FgBytes
			dst.BgBytes += ds.BgBytes
			dst.Packets += ds.Packets
		}
	}
	for app, b := range other.BytesByApp {
		l.BytesByApp[app] += b
	}
}
