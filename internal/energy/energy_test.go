package energy

import (
	"math"
	"testing"
	"testing/quick"

	"netenergy/internal/netparse"
	"netenergy/internal/radio"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

const sec = trace.Timestamp(1_000_000)

// addPacket appends a real serialised TCP/IPv4 packet record to dt,
// panicking on serialisation failure (inputs in these tests are valid).
func addPacket(dt *trace.DeviceTrace, ts trace.Timestamp, app uint32,
	dir trace.Direction, state trace.ProcState, payloadLen int, port uint16) {
	buf := make([]byte, 40+payloadLen)
	_, err := netparse.BuildTCPv4(buf, [4]byte{10, 0, 0, 1}, [4]byte{93, 184, 216, 34},
		port, 443, 0, netparse.TCPAck, payloadLen)
	if err != nil {
		panic(err)
	}
	dt.Records = append(dt.Records, trace.Record{
		Type: trace.RecPacket, TS: ts, App: app, Dir: dir,
		Net: trace.NetCellular, State: state, Payload: buf,
	})
}

func newTrace() *trace.DeviceTrace {
	return &trace.DeviceTrace{Device: "test", Start: 0, Apps: trace.NewAppTable()}
}

func TestProcessSingleBurst(t *testing.T) {
	dt := newTrace()
	addPacket(dt, 10*sec, 1, trace.DirUp, trace.StateForeground, 500, 1000)
	res, err := Process(dt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := radio.LTE()
	want := radio.BurstEnergy(p, 540, radio.Up) // 40 B headers + 500 B payload
	if math.Abs(res.Ledger.Total-want) > 1e-9 {
		t.Errorf("total = %v, want %v", res.Ledger.Total, want)
	}
	if math.Abs(res.Ledger.ByApp[1]-want) > 1e-9 {
		t.Errorf("app energy = %v", res.Ledger.ByApp[1])
	}
	if res.Ledger.ByState[trace.StateForeground] != res.Ledger.Total {
		t.Error("all energy should be foreground")
	}
	if len(res.Packets) != 1 || math.Abs(res.Packets[0].Energy-want) > 1e-9 {
		t.Errorf("packet energy = %+v", res.Packets)
	}
	if res.Ledger.BytesByApp[1] != 540 {
		t.Errorf("bytes = %d", res.Ledger.BytesByApp[1])
	}
}

func TestTailAttributedToLastPacket(t *testing.T) {
	// App 1 sends, then app 2 sends 2 s later (within app 1's tail), then
	// nothing. The 2 s of gap tail belongs to app 1; the final full tail
	// belongs to app 2.
	dt := newTrace()
	addPacket(dt, 0, 1, trace.DirUp, trace.StateService, 100, 1000)
	addPacket(dt, 2*sec, 2, trace.DirUp, trace.StateService, 100, 2000)
	res, err := Process(dt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := radio.LTE()
	// App 1: promotion + transfer + ~2s of tail.
	if res.Ledger.ByApp[1] < p.PromotionEnergy()+1.9 || res.Ledger.ByApp[1] > p.PromotionEnergy()+2.8 {
		t.Errorf("app1 energy = %v", res.Ledger.ByApp[1])
	}
	// App 2: transfer + full tail, no promotion.
	if res.Ledger.ByApp[2] < p.FullTailEnergy() || res.Ledger.ByApp[2] > p.FullTailEnergy()+0.5 {
		t.Errorf("app2 energy = %v", res.Ledger.ByApp[2])
	}
	sum := res.Ledger.ByApp[1] + res.Ledger.ByApp[2]
	if math.Abs(sum-res.Ledger.Total) > 1e-9 {
		t.Errorf("conservation: %v vs %v", sum, res.Ledger.Total)
	}
}

func TestNetworkFilter(t *testing.T) {
	dt := newTrace()
	addPacket(dt, 0, 1, trace.DirUp, trace.StateService, 100, 1000)
	// Mark the second packet as WiFi: it must be ignored under cellular accounting.
	addPacket(dt, 5*sec, 2, trace.DirUp, trace.StateService, 100, 2000)
	dt.Records[1].Net = trace.NetWiFi
	res, err := Process(dt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.ByApp[2] != 0 {
		t.Errorf("wifi packet charged on cellular: %v", res.Ledger.ByApp[2])
	}
	if len(res.Packets) != 1 {
		t.Errorf("packets kept = %d", len(res.Packets))
	}
}

func TestDecodeErrorsSkipped(t *testing.T) {
	dt := newTrace()
	addPacket(dt, 0, 1, trace.DirUp, trace.StateService, 100, 1000)
	dt.Records = append(dt.Records, trace.Record{
		Type: trace.RecPacket, TS: 2 * sec, App: 2, Dir: trace.DirUp,
		Net: trace.NetCellular, State: trace.StateService,
		Payload: []byte{0xff, 0x00, 0x01},
	})
	res, err := Process(dt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeErrors != 1 {
		t.Errorf("decode errors = %d", res.DecodeErrors)
	}
	if res.Ledger.ByApp[2] != 0 {
		t.Error("undecodable packet was charged")
	}
}

func TestBackgroundFraction(t *testing.T) {
	dt := newTrace()
	addPacket(dt, 0, 1, trace.DirUp, trace.StateForeground, 100, 1000)
	addPacket(dt, 100*sec, 1, trace.DirUp, trace.StateService, 100, 1000)
	addPacket(dt, 200*sec, 1, trace.DirUp, trace.StateBackground, 100, 1000)
	res, _ := Process(dt, DefaultOptions())
	f := res.Ledger.BackgroundFraction()
	if f < 0.6 || f > 0.7 {
		t.Errorf("bg fraction = %v, want ~2/3", f)
	}
	if res.Ledger.AppBackgroundFraction(1) != f {
		t.Error("single-app trace: app fraction should equal device fraction")
	}
	if got := res.Ledger.StateFraction(trace.StateService); math.Abs(got-1.0/3) > 0.02 {
		t.Errorf("service fraction = %v", got)
	}
	if res.Ledger.AppBackgroundFraction(99) != 0 {
		t.Error("unknown app fraction should be 0")
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Process(newTrace(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Total != 0 || res.Ledger.BackgroundFraction() != 0 {
		t.Error("empty trace should have zero energy")
	}
}

func TestDayLedger(t *testing.T) {
	dt := newTrace()
	day := trace.Timestamp(86400) * sec
	addPacket(dt, 10*sec, 1, trace.DirUp, trace.StateForeground, 100, 1000)
	addPacket(dt, day+10*sec, 1, trace.DirUp, trace.StateService, 200, 1001)
	res, _ := Process(dt, DefaultOptions())
	d0 := res.Ledger.ByAppDay[1][0]
	d1 := res.Ledger.ByAppDay[1][1]
	if d0 == nil || d1 == nil {
		t.Fatalf("day ledgers missing: %v", res.Ledger.ByAppDay)
	}
	if d0.FgBytes != 140 || d0.BgBytes != 0 {
		t.Errorf("day0 = %+v", d0)
	}
	if d1.BgBytes != 240 || d1.FgBytes != 0 {
		t.Errorf("day1 = %+v", d1)
	}
	if d0.Packets != 1 || d1.Packets != 1 {
		t.Errorf("packets per day: %d/%d", d0.Packets, d1.Packets)
	}
}

func TestConservationProperty(t *testing.T) {
	// Σ per-app == Σ per-state == Σ packet energies == Total, under random
	// multi-app workloads.
	src := rng.New(321)
	f := func(n uint8) bool {
		dt := newTrace()
		count := int(n)%120 + 1
		ts := trace.Timestamp(0)
		for i := 0; i < count; i++ {
			ts += trace.Timestamp(src.Exp(15) * 1e6)
			addPacket(dt, ts, uint32(src.Intn(6)), trace.Direction(src.Intn(2)),
				trace.ProcState(1+src.Intn(5)), src.Intn(1200), uint16(1000+src.Intn(50)))
		}
		res, err := Process(dt, DefaultOptions())
		if err != nil {
			return false
		}
		var byApp, byState, byPkt, byDay float64
		for _, e := range res.Ledger.ByApp {
			byApp += e
		}
		for _, e := range res.Ledger.ByState {
			byState += e
		}
		for _, p := range res.Packets {
			byPkt += p.Energy
		}
		for _, days := range res.Ledger.ByAppDay {
			for _, ds := range days {
				byDay += ds.Energy
			}
		}
		tot := res.Ledger.Total
		ok := func(v float64) bool { return math.Abs(v-tot) < 1e-6*(1+tot) }
		return ok(byApp) && ok(byState) && ok(byPkt) && ok(byDay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMergeLedgers(t *testing.T) {
	mk := func(seed uint64) *Ledger {
		src := rng.New(seed)
		dt := newTrace()
		ts := trace.Timestamp(0)
		for i := 0; i < 30; i++ {
			ts += trace.Timestamp(src.Exp(20) * 1e6)
			addPacket(dt, ts, uint32(src.Intn(3)), trace.DirUp,
				trace.ProcState(1+src.Intn(5)), src.Intn(800), uint16(1000+i))
		}
		res, err := Process(dt, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Ledger
	}
	a, b := mk(1), mk(2)
	m := MergeLedgers([]*Ledger{a, b})
	if math.Abs(m.Total-(a.Total+b.Total)) > 1e-9 {
		t.Errorf("merged total = %v, want %v", m.Total, a.Total+b.Total)
	}
	for app := range m.ByApp {
		want := a.ByApp[app] + b.ByApp[app]
		if math.Abs(m.ByApp[app]-want) > 1e-9 {
			t.Errorf("app %d merged = %v, want %v", app, m.ByApp[app], want)
		}
	}
	var stateSum float64
	for _, e := range m.ByState {
		stateSum += e
	}
	if math.Abs(stateSum-m.Total) > 1e-6 {
		t.Errorf("merged state sum = %v vs total %v", stateSum, m.Total)
	}
}

func TestKeepPacketsFalse(t *testing.T) {
	dt := newTrace()
	addPacket(dt, 0, 1, trace.DirUp, trace.StateService, 100, 1000)
	opts := DefaultOptions()
	opts.KeepPackets = false
	res, err := Process(dt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != nil {
		t.Error("packets kept despite KeepPackets=false")
	}
	if res.Ledger.Total == 0 {
		t.Error("ledger empty")
	}
}

func TestIdleEnergySeparate(t *testing.T) {
	dt := newTrace()
	addPacket(dt, 0, 1, trace.DirUp, trace.StateService, 100, 1000)
	addPacket(dt, 1000*sec, 1, trace.DirUp, trace.StateService, 100, 1000)
	res, _ := Process(dt, DefaultOptions())
	wantIdle := radio.LTE().IdlePower * 1000
	if math.Abs(res.Ledger.IdleEnergy-wantIdle) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", res.Ledger.IdleEnergy, wantIdle)
	}
	// Idle energy must not be inside Total.
	var byApp float64
	for _, e := range res.Ledger.ByApp {
		byApp += e
	}
	if math.Abs(byApp-res.Ledger.Total) > 1e-9 {
		t.Error("idle energy leaked into attribution")
	}
}

func TestHostExtraction(t *testing.T) {
	dt := newTrace()
	req := []byte("GET /poll HTTP/1.1\r\nHost: api.poller.example\r\n")
	buf := make([]byte, 4096)
	stored, _, err := netparse.BuildTCPv4SnappedPayload(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 1},
		41000, 443, 0, netparse.TCPPsh|netparse.TCPAck, req, 5000, 96)
	if err != nil {
		t.Fatal(err)
	}
	dt.Records = append(dt.Records, trace.Record{
		Type: trace.RecPacket, TS: 10 * sec, App: 1, Dir: trace.DirUp,
		Net: trace.NetCellular, State: trace.StateService, Payload: buf[:stored],
	})
	addPacket(dt, 11*sec, 1, trace.DirDown, trace.StateService, 100, 41000)
	res, err := Process(dt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 2 {
		t.Fatalf("packets = %d", len(res.Packets))
	}
	if res.Packets[0].Host != "api.poller.example" {
		t.Errorf("host = %q", res.Packets[0].Host)
	}
	if res.Packets[1].Host != "" {
		t.Errorf("response host = %q, want empty", res.Packets[1].Host)
	}
	if res.Packets[0].Seq != 0 || res.Packets[1].Bytes == 0 {
		t.Errorf("seq/bytes: %+v", res.Packets)
	}
}

func TestHostInterning(t *testing.T) {
	h := hostInterner{}
	a := h.intern("x.example")
	b := h.intern("x.example")
	if &a == &b {
		// strings are values; check map behaviour instead
		t.Skip()
	}
	if a != b || len(h) != 1 {
		t.Errorf("interning broken: %q %q len=%d", a, b, len(h))
	}
}
