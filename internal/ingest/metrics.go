package ingest

import (
	"sync"
	"sync/atomic"
	"time"

	"netenergy/internal/obs"
)

// counters are the server-wide totals and hot-path distributions, updated
// lock-free from every connection handler (and, for accepted-record counts,
// from the shard workers, which own dedup and therefore own the truth about
// what was accepted). All of them live in an obs.Registry, so the same
// values back the JSON /stats document, the Prometheus /metrics exposition
// and fleetsim's exit-time reconciliation — one source of truth, fully
// synchronized.
type counters struct {
	reg    *obs.Registry
	events *obs.EventLog

	connsTotal   *obs.Counter
	connsActive  *obs.Gauge
	frames       *obs.Counter
	records      *obs.Counter
	bytes        *obs.Counter
	crcErrors    *obs.Counter
	decodeErrors *obs.Counter
	frameErrors  *obs.Counter
	helloErrors  *obs.Counter

	// Fault-tolerance counters.
	duplicates     *obs.Counter // replayed records dropped by dedup
	resumes        *obs.Counter // handshakes that resumed prior progress
	throttled      *obs.Counter // handshakes refused by rate limiting
	severs         *obs.Counter // connections severed on CRC/decode/gap
	recordsSkipped *obs.Counter // poison records skipped past

	// Cluster counters.
	redirects       *obs.Counter // handshakes answered with a redirect ack
	transfers       *obs.Counter // checkpoint handoffs adopted
	transferDevices *obs.Counter // device states adopted from handoffs
	transferErrors  *obs.Counter // handoffs rejected (corrupt or undecodable)

	// Checkpoint health (written by the checkpoint loop).
	ckptGen      *obs.Gauge
	ckptBytes    *obs.Gauge
	ckptErrors   *obs.Counter
	ckptUnixNano *obs.Gauge // time of last successful save

	// Durable-FIN and rejoin-fencing state.
	finDurable    *obs.Counter // FIN acks released after a durable checkpoint
	fenced        *obs.Gauge   // 1 once the node has fenced itself
	fenceArchives *obs.Counter // checkpoint dirs archived (tombstone or fence)

	// Segment store and query engine.
	segRecords         *obs.Counter // records appended to segment files
	segRecordsDropped  *obs.Counter // records dropped from segments (clock regressions)
	segSealed          *obs.Counter // segment files sealed (footer index written)
	segBytes           *obs.Counter // bytes in sealed segment files
	segErrors          *obs.Counter // I/O failures that disabled a device's persistence
	queries            *obs.Counter // GET /query requests served
	queryErrors        *obs.Counter // GET /query requests rejected or failed
	queryBlocksSkipped *obs.Counter // blocks pruned by the seek index across queries

	// Hot-path distributions. frameSeconds is the per-frame record-decode
	// latency; applySeconds is the enqueue→apply latency through a shard
	// queue (the backpressure signal with a time axis); batchRecords is the
	// hand-off batch size; ckptSeconds is the checkpoint save duration.
	frameSeconds *obs.Histogram
	applySeconds *obs.Histogram
	batchRecords *obs.Histogram
	ckptSeconds  *obs.Histogram
	// finBatchSessions is how many finishing sessions shared one durable
	// group-commit checkpoint (the fsync amortization factor).
	finBatchSessions *obs.Histogram
}

// newCounters builds the registry-backed counter set. Every metric name is
// documented in README.md ("Observability").
func newCounters() *counters {
	reg := obs.New()
	c := &counters{
		reg:    reg,
		events: obs.NewEventLog(256),

		connsTotal:   reg.Counter("ingest_conns_total", "device connections accepted"),
		connsActive:  reg.Gauge("ingest_conns_active", "device connections currently open"),
		frames:       reg.Counter("ingest_frames_total", "wire frames accepted (CRC-valid)"),
		records:      reg.Counter("ingest_records_total", "records accepted into shard accumulators"),
		bytes:        reg.Counter("ingest_bytes_total", "frame body bytes accepted"),
		crcErrors:    reg.Counter("ingest_crc_errors_total", "frames rejected by CRC"),
		decodeErrors: reg.Counter("ingest_decode_errors_total", "frame bodies that failed record decode"),
		frameErrors:  reg.Counter("ingest_frame_errors_total", "framing violations (truncation, gaps, bad FIN)"),
		helloErrors:  reg.Counter("ingest_hello_errors_total", "connections with an invalid handshake"),

		duplicates:     reg.Counter("ingest_duplicates_total", "replayed records dropped by dedup"),
		resumes:        reg.Counter("ingest_resumes_total", "handshakes that resumed prior progress"),
		throttled:      reg.Counter("ingest_throttled_total", "handshakes refused by rate limiting"),
		severs:         reg.Counter("ingest_severs_total", "connections severed on CRC/decode/gap"),
		recordsSkipped: reg.Counter("ingest_records_skipped_total", "poison records skipped past"),

		redirects:       reg.Counter("ingest_redirects_total", "handshakes answered with a redirect ack"),
		transfers:       reg.Counter("ingest_transfers_total", "checkpoint handoffs adopted"),
		transferDevices: reg.Counter("ingest_transfer_devices_total", "device states adopted from handoffs"),
		transferErrors:  reg.Counter("ingest_transfer_errors_total", "handoffs rejected as corrupt or undecodable"),

		ckptGen:      reg.Gauge("ingest_checkpoint_generation", "latest checkpoint generation written or recovered"),
		ckptBytes:    reg.Gauge("ingest_checkpoint_bytes", "approximate size of the latest checkpoint"),
		ckptErrors:   reg.Counter("ingest_checkpoint_errors_total", "failed checkpoint saves"),
		ckptUnixNano: reg.Gauge("ingest_checkpoint_last_unixnano", "wall time of the last successful checkpoint save"),

		finDurable:    reg.Counter("ingest_fin_durable_total", "FIN acks released only after a durable checkpoint"),
		fenced:        reg.Gauge("ingest_fenced", "1 once this node fenced itself after a handoff"),
		fenceArchives: reg.Counter("ingest_fence_archives_total", "checkpoint directories archived as already-shipped"),

		segRecords:         reg.Counter("ingest_segment_records_total", "records appended to segment files"),
		segRecordsDropped:  reg.Counter("ingest_segment_records_dropped_total", "records dropped from segments on timestamp regression"),
		segSealed:          reg.Counter("ingest_segments_sealed_total", "segment files sealed with a footer index"),
		segBytes:           reg.Counter("ingest_segment_bytes_total", "bytes in sealed segment files"),
		segErrors:          reg.Counter("ingest_segment_errors_total", "I/O failures that disabled a device's segment persistence"),
		queries:            reg.Counter("ingest_queries_total", "GET /query requests served"),
		queryErrors:        reg.Counter("ingest_query_errors_total", "GET /query requests rejected or failed"),
		queryBlocksSkipped: reg.Counter("ingest_query_blocks_skipped_total", "blocks pruned by the segment seek index across queries"),

		frameSeconds:     reg.Histogram("ingest_frame_decode_seconds", "per-frame record decode latency", obs.DurationBuckets()),
		applySeconds:     reg.Histogram("ingest_apply_latency_seconds", "shard enqueue-to-apply latency per batch", obs.DurationBuckets()),
		batchRecords:     reg.Histogram("ingest_batch_records", "records per shard hand-off batch", obs.SizeBuckets()),
		ckptSeconds:      reg.Histogram("ingest_checkpoint_save_seconds", "checkpoint save duration", obs.DurationBuckets()),
		finBatchSessions: reg.Histogram("ingest_fin_batch_sessions", "sessions sharing one durable-FIN group commit", obs.SizeBuckets()),
	}
	c.events.RegisterEventMetrics(reg, "ingest_events_total", "events logged by level")
	return c
}

// DeviceStats are the per-device counters the admin endpoint exposes; the
// error counters are what flags a misbehaving collector in the fleet.
type DeviceStats struct {
	Records      int64 `json:"records"`
	Bytes        int64 `json:"bytes"`
	CRCErrors    int64 `json:"crc_errors"`
	DecodeErrors int64 `json:"decode_errors"`
	Conns        int64 `json:"conns"`
	Resumes      int64 `json:"resumes"`
}

// deviceCounters is the live (atomic) form of DeviceStats, plus the
// per-device admission bucket and poison-record tracker.
type deviceCounters struct {
	records, bytes, crcErrors, decodeErrors, conns, resumes atomic.Int64

	bucket tokenBucket

	// poisonSeq/poisonCount track consecutive decode failures at the same
	// head-of-line sequence number across reconnects; at poisonThreshold
	// the server skips the record rather than wedge the stream. poisonSeq
	// stores seq+1 so the zero value means "none".
	poisonSeq   atomic.Int64
	poisonCount atomic.Int64
}

// poisonThreshold is how many consecutive reconnects may fail to decode the
// same record before the server skips it.
const poisonThreshold = 3

// notePoison records a decode failure at seq and returns how many
// consecutive failures that sequence has now accumulated.
func (d *deviceCounters) notePoison(seq int64) int64 {
	if d.poisonSeq.Swap(seq+1) == seq+1 {
		return d.poisonCount.Add(1)
	}
	d.poisonCount.Store(1)
	return 1
}

func (d *deviceCounters) clearPoison() {
	d.poisonSeq.Store(0)
	d.poisonCount.Store(0)
}

func (d *deviceCounters) snapshot() DeviceStats {
	return DeviceStats{
		Records:      d.records.Load(),
		Bytes:        d.bytes.Load(),
		CRCErrors:    d.crcErrors.Load(),
		DecodeErrors: d.decodeErrors.Load(),
		Conns:        d.conns.Load(),
		Resumes:      d.resumes.Load(),
	}
}

// tokenBucket is a standard refill-on-demand token bucket, used to rate
// limit per-device connection admissions. Shedding at the handshake (with
// an explicit retry-after) is deterministic degradation: the client knows
// it was refused and when to return, instead of discovering mid-stream
// that the server is drowning.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take consumes one token, refilling at rate tokens/sec up to burst. When
// empty it returns false and how long until a token is available.
func (b *tokenBucket) take(rate, burst float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = burst
	} else {
		b.tokens += rate * now.Sub(b.last).Seconds()
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// deviceRegistry interns per-device counters across reconnects.
type deviceRegistry struct {
	mu   sync.RWMutex
	devs map[string]*deviceCounters
}

func newDeviceRegistry() *deviceRegistry {
	return &deviceRegistry{devs: map[string]*deviceCounters{}}
}

func (r *deviceRegistry) get(device string) *deviceCounters {
	r.mu.RLock()
	d := r.devs[device]
	r.mu.RUnlock()
	if d != nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d = r.devs[device]; d == nil {
		d = &deviceCounters{}
		r.devs[device] = d
	}
	return d
}

// lookup returns the counters for a device without creating them — the
// admin read path, which must not invent devices out of typos.
func (r *deviceRegistry) lookup(device string) *deviceCounters {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.devs[device]
}

func (r *deviceRegistry) snapshot() map[string]DeviceStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]DeviceStats, len(r.devs))
	for dev, c := range r.devs {
		out[dev] = c.snapshot()
	}
	return out
}

func (r *deviceRegistry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.devs)
}

// CheckpointStats is the durability block of the admin /stats document.
type CheckpointStats struct {
	Generation uint64  `json:"generation"`
	AgeSec     float64 `json:"age_sec"`
	Bytes      int64   `json:"bytes"`
	Errors     int64   `json:"errors"`
}

// Stats is the admin /stats document.
type Stats struct {
	// NodeID attributes this document to one cluster member (empty
	// outside cluster mode), so aggregator merges are debuggable.
	NodeID        string  `json:"node_id,omitempty"`
	UptimeSec     float64 `json:"uptime_sec"`
	ConnsActive   int64   `json:"conns_active"`
	ConnsTotal    int64   `json:"conns_total"`
	Devices       int     `json:"devices"`
	Frames        int64   `json:"frames"`
	Records       int64   `json:"records"`
	Bytes         int64   `json:"bytes"`
	CRCErrors     int64   `json:"crc_errors"`
	DecodeErrors  int64   `json:"decode_errors"`
	FrameErrors   int64   `json:"frame_errors"`
	HelloErrors   int64   `json:"hello_errors"`
	RecordsPerSec float64 `json:"records_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`

	// Fault-tolerance surface: how the stream is degrading and recovering.
	Duplicates     int64 `json:"duplicates"`
	Resumes        int64 `json:"resumes"`
	Throttled      int64 `json:"throttled"`
	Severs         int64 `json:"severs"`
	RecordsSkipped int64 `json:"records_skipped"`

	// Cluster surface: ownership routing and checkpoint handoff.
	Redirects       int64 `json:"redirects,omitempty"`
	Transfers       int64 `json:"transfers,omitempty"`
	TransferDevices int64 `json:"transfer_devices,omitempty"`
	TransferErrors  int64 `json:"transfer_errors,omitempty"`
	// Fenced is true once this node's state was handed off to survivors
	// and it stopped serving streams.
	Fenced bool `json:"fenced,omitempty"`

	// Checkpoint is present when durability is enabled.
	Checkpoint *CheckpointStats `json:"checkpoint,omitempty"`

	// ShardDepths is the instantaneous queue occupancy per shard — the
	// backpressure gauge.
	ShardDepths []int `json:"shard_depths"`
	// PerDevice is included when the caller asks for it (?devices=1).
	PerDevice map[string]DeviceStats `json:"per_device,omitempty"`
}

// rateTracker turns monotonic totals into rates between observations.
type rateTracker struct {
	mu          sync.Mutex
	lastTime    time.Time
	lastRecords int64
	lastBytes   int64
}

// rates returns records/s and bytes/s since the previous call (0 on the
// first observation or when called again within a millisecond).
func (t *rateTracker) rates(records, bytes int64, now time.Time) (float64, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastTime.IsZero() {
		t.lastTime, t.lastRecords, t.lastBytes = now, records, bytes
		return 0, 0
	}
	dt := now.Sub(t.lastTime).Seconds()
	if dt < 1e-3 {
		return 0, 0
	}
	rps := float64(records-t.lastRecords) / dt
	bps := float64(bytes-t.lastBytes) / dt
	t.lastTime, t.lastRecords, t.lastBytes = now, records, bytes
	return rps, bps
}
