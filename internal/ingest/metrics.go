package ingest

import (
	"sync"
	"sync/atomic"
	"time"
)

// counters are the server-wide monotonic totals, updated lock-free from
// every connection handler.
type counters struct {
	connsTotal   atomic.Int64
	connsActive  atomic.Int64
	frames       atomic.Int64
	records      atomic.Int64
	bytes        atomic.Int64
	crcErrors    atomic.Int64
	decodeErrors atomic.Int64
	frameErrors  atomic.Int64
	helloErrors  atomic.Int64
}

// DeviceStats are the per-device counters the admin endpoint exposes; the
// error counters are what flags a misbehaving collector in the fleet.
type DeviceStats struct {
	Records      int64 `json:"records"`
	Bytes        int64 `json:"bytes"`
	CRCErrors    int64 `json:"crc_errors"`
	DecodeErrors int64 `json:"decode_errors"`
	Conns        int64 `json:"conns"`
}

// deviceCounters is the live (atomic) form of DeviceStats.
type deviceCounters struct {
	records, bytes, crcErrors, decodeErrors, conns atomic.Int64
}

func (d *deviceCounters) snapshot() DeviceStats {
	return DeviceStats{
		Records:      d.records.Load(),
		Bytes:        d.bytes.Load(),
		CRCErrors:    d.crcErrors.Load(),
		DecodeErrors: d.decodeErrors.Load(),
		Conns:        d.conns.Load(),
	}
}

// deviceRegistry interns per-device counters across reconnects.
type deviceRegistry struct {
	mu   sync.RWMutex
	devs map[string]*deviceCounters
}

func newDeviceRegistry() *deviceRegistry {
	return &deviceRegistry{devs: map[string]*deviceCounters{}}
}

func (r *deviceRegistry) get(device string) *deviceCounters {
	r.mu.RLock()
	d := r.devs[device]
	r.mu.RUnlock()
	if d != nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d = r.devs[device]; d == nil {
		d = &deviceCounters{}
		r.devs[device] = d
	}
	return d
}

func (r *deviceRegistry) snapshot() map[string]DeviceStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]DeviceStats, len(r.devs))
	for dev, c := range r.devs {
		out[dev] = c.snapshot()
	}
	return out
}

func (r *deviceRegistry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.devs)
}

// Stats is the admin /stats document.
type Stats struct {
	UptimeSec     float64 `json:"uptime_sec"`
	ConnsActive   int64   `json:"conns_active"`
	ConnsTotal    int64   `json:"conns_total"`
	Devices       int     `json:"devices"`
	Frames        int64   `json:"frames"`
	Records       int64   `json:"records"`
	Bytes         int64   `json:"bytes"`
	CRCErrors     int64   `json:"crc_errors"`
	DecodeErrors  int64   `json:"decode_errors"`
	FrameErrors   int64   `json:"frame_errors"`
	HelloErrors   int64   `json:"hello_errors"`
	RecordsPerSec float64 `json:"records_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	// ShardDepths is the instantaneous queue occupancy per shard — the
	// backpressure gauge.
	ShardDepths []int `json:"shard_depths"`
	// PerDevice is included when the caller asks for it (?devices=1).
	PerDevice map[string]DeviceStats `json:"per_device,omitempty"`
}

// rateTracker turns monotonic totals into rates between observations.
type rateTracker struct {
	mu          sync.Mutex
	lastTime    time.Time
	lastRecords int64
	lastBytes   int64
}

// rates returns records/s and bytes/s since the previous call (0 on the
// first observation or when called again within a millisecond).
func (t *rateTracker) rates(records, bytes int64, now time.Time) (float64, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastTime.IsZero() {
		t.lastTime, t.lastRecords, t.lastBytes = now, records, bytes
		return 0, 0
	}
	dt := now.Sub(t.lastTime).Seconds()
	if dt < 1e-3 {
		return 0, 0
	}
	rps := float64(records-t.lastRecords) / dt
	bps := float64(bytes-t.lastBytes) / dt
	t.lastTime, t.lastRecords, t.lastBytes = now, records, bytes
	return rps, bps
}
