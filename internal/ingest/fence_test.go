package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// TestDurableFINKillAfterAck closes the FIN-ack durability window: with
// -durable-fin, a FIN acknowledgement means the session's finalized result
// is on disk, so a server killed the instant after the last ack (no drain,
// no timer checkpoint — the interval is an hour) must recover every record
// and every joule from the checkpoint directory alone.
func TestDurableFINKillAfterAck(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		return startServer(t, Config{
			Shards: 2, QueueDepth: 16, BatchSize: 8,
			CheckpointDir: dir, CheckpointInterval: time.Hour,
			DurableFIN: true,
		})
	}
	a := mk()
	dts := synthgen.GenerateInMemory(synthgen.Small(3, 1))
	var sent int64
	var wg sync.WaitGroup
	errs := make([]error, len(dts))
	for i, dt := range dts {
		sent += int64(len(dt.Records))
		wg.Add(1)
		go func(i int, dt *trace.DeviceTrace) {
			defer wg.Done()
			_, errs[i] = StreamTrace(SessionConfig{
				Nodes:    []string{a.Addr().String()},
				Device:   dt.Device,
				Start:    dt.Start,
				Deadline: time.Minute,
				Backoff:  Backoff{Base: 2 * time.Millisecond, Max: 40 * time.Millisecond},
			}, dt.Records)
		}(i, dt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %s: %v", dts[i].Device, err)
		}
	}
	if got := a.counters.finDurable.Load(); got != int64(len(dts)) {
		t.Fatalf("durable FIN acks = %d, want %d", got, len(dts))
	}
	a.Kill() // fail-stop immediately after the last FIN ack

	b := mk()
	if got := b.counters.records.Load(); got != sent {
		t.Fatalf("recovered records = %d, sent = %d (FIN ack was not durable)", got, sent)
	}
	for _, dt := range dts {
		if got := b.DeviceRecords(dt.Device); got != int64(len(dt.Records)) {
			t.Errorf("device %s: recovered %d records, want %d", dt.Device, got, len(dt.Records))
		}
	}
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ComputeHeadline(devs)
	h := b.Headline()
	if d := math.Abs(h.TotalEnergyJ - want.TotalEnergyJ); d > 1e-9*(1+want.TotalEnergyJ) {
		t.Errorf("recovered energy %v, batch %v", h.TotalEnergyJ, want.TotalEnergyJ)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRejoinAutoFence closes the rejoin window: a node that crashed, had
// its checkpoint handed off to survivors (recorded by the tombstone), and
// then comes back on the same directory must NOT re-serve the shipped
// state — it archives the directory behind the tombstone and starts clean,
// with no operator wipe. A tombstone older than the newest local
// generation must not destroy the unshipped newer state.
func TestRejoinAutoFence(t *testing.T) {
	dir := t.TempDir()
	mkcfg := Config{Shards: 1, QueueDepth: 8, BatchSize: 4, CheckpointDir: dir, CheckpointInterval: time.Hour}
	a := startServer(t, mkcfg)
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	streamTrace(t, a.Addr().String(), dt)
	if err := a.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	inc := a.Incarnation()
	a.Kill()

	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen := store.Generation()
	if gen == 0 {
		t.Fatal("no checkpoint generation on disk")
	}

	// The aggregator handed generation `gen` off to survivors and left the
	// tombstone behind.
	if err := checkpoint.WriteTombstone(dir, checkpoint.Tombstone{
		Node: "n1", Incarnation: inc, Generation: gen, UnixNano: 1,
	}); err != nil {
		t.Fatal(err)
	}

	b := startServer(t, mkcfg)
	if got := b.counters.records.Load(); got != 0 {
		t.Fatalf("rejoined node restored %d shipped records, want clean start", got)
	}
	if got := b.counters.fenceArchives.Load(); got != 1 {
		t.Errorf("fence archives = %d, want 1", got)
	}
	shipped, err := filepath.Glob(filepath.Join(dir, "shipped-*"))
	if err != nil || len(shipped) != 1 {
		t.Fatalf("shipped archive dirs = %v (err %v), want exactly one", shipped, err)
	}
	if tomb, err := checkpoint.LoadTombstone(dir); err != nil || tomb != nil {
		t.Fatalf("tombstone still live in dir after archive: %v %v", tomb, err)
	}
	// The clean node serves the device from scratch and checkpoints into
	// generations strictly newer than the archived ones.
	streamTrace(t, b.Addr().String(), dt)
	if err := b.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	st2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2 := st2.Generation(); g2 <= gen {
		t.Errorf("post-archive generation %d not beyond shipped %d", g2, gen)
	}
	b.Kill()

	// Stale tombstone: newer unshipped generations exist; they must survive.
	if err := checkpoint.WriteTombstone(dir, checkpoint.Tombstone{
		Node: "n1", Incarnation: inc, Generation: gen, UnixNano: 2,
	}); err != nil {
		t.Fatal(err)
	}
	c := startServer(t, mkcfg)
	defer c.Kill()
	if got := c.counters.records.Load(); got != int64(len(dt.Records)) {
		t.Fatalf("stale tombstone destroyed unshipped state: %d records, want %d", got, len(dt.Records))
	}
	if tomb, err := checkpoint.LoadTombstone(dir); err != nil || tomb != nil {
		t.Fatalf("stale tombstone not cleared: %v %v", tomb, err)
	}
}

// TestFenceEndpoint drives the runtime fence: POST /fence with a matching
// incarnation must stop stream service, archive the checkpoint directory
// behind a tombstone, and fire OnFenced; a mismatched incarnation (some
// other process's ghost) must be a no-op.
func TestFenceEndpoint(t *testing.T) {
	dir := t.TempDir()
	fenced := make(chan string, 1)
	s := startServer(t, Config{
		Shards: 1, AdminAddr: "127.0.0.1:0", NodeID: "n1",
		QueueDepth: 8, BatchSize: 4,
		CheckpointDir: dir, CheckpointInterval: time.Hour,
		OnFenced: func(reason string) { fenced <- reason },
	})
	defer s.Kill()
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	streamTrace(t, s.Addr().String(), dt)
	if err := s.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.AdminAddr().String()

	postFence := func(inc string) FenceResponse {
		t.Helper()
		body, _ := json.Marshal(FenceRequest{Incarnation: inc}) //nolint:errcheck
		resp, err := http.Post(base+"/fence", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var fr FenceResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}

	// Wrong incarnation: refused, still serving.
	if fr := postFence("ghost.1.1"); fr.Fenced {
		t.Fatalf("mismatched incarnation fenced the node: %+v", fr)
	}
	if s.Fenced() {
		t.Fatal("server fenced by a mismatched incarnation")
	}

	if fr := postFence(s.Incarnation()); !fr.Fenced || fr.NodeID != "n1" {
		t.Fatalf("matching fence response %+v", fr)
	}
	select {
	case <-fenced:
	case <-time.After(5 * time.Second):
		t.Fatal("OnFenced never fired")
	}
	if !s.Fenced() || !s.Stats(false).Fenced {
		t.Fatal("server not marked fenced")
	}
	// Stream plane refuses new sessions (the client walks to another node).
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(conn, "dev-x", 0, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-fence handshake error = %v, want ErrDraining", err)
	}
	// The snapshot surface advertises the fence to the aggregator.
	resp, err := http.Get(base + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Fenced") != "1" {
		t.Error("fenced /snapshot missing X-Fenced header")
	}
	// Durable state is archived behind the tombstone; no fresh generations.
	shipped, err := filepath.Glob(filepath.Join(dir, "shipped-*"))
	if err != nil || len(shipped) != 1 {
		t.Fatalf("shipped archive dirs = %v (err %v), want exactly one", shipped, err)
	}
	if err := s.SaveCheckpoint(); err == nil {
		t.Fatal("SaveCheckpoint succeeded on a fenced node")
	}
	// Fencing is idempotent.
	if fr := postFence(s.Incarnation()); !fr.Fenced {
		t.Fatalf("repeat fence response %+v", fr)
	}
}
