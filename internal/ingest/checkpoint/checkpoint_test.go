package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Devices: []DeviceState{
			{Device: "u000", Seq: 1234, Acc: []byte{1, 2, 3, 4}},
			{Device: "u001", Seq: 99, Acc: nil}, // retired: seq only
			{Device: "u002", Seq: 0, Acc: []byte{}},
		},
		Retired: []byte{9, 8, 7},
	}
}

// TestEncodeDecodeRoundtrip: payload codec reproduces the snapshot.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatal(err)
	}
	// Encode normalizes empty non-nil Acc to present-but-empty; compare
	// semantically.
	if len(got.Devices) != len(want.Devices) {
		t.Fatalf("devices = %d, want %d", len(got.Devices), len(want.Devices))
	}
	for i := range want.Devices {
		w, g := want.Devices[i], got.Devices[i]
		if g.Device != w.Device || g.Seq != w.Seq || !bytes.Equal(g.Acc, w.Acc) ||
			(g.Acc == nil) != (w.Acc == nil) {
			t.Errorf("device %d: got %+v want %+v", i, g, w)
		}
	}
	if !bytes.Equal(got.Retired, want.Retired) {
		t.Errorf("retired mismatch")
	}

	empty := &Snapshot{}
	got, err = Decode(Encode(empty))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) != 0 || got.Retired != nil {
		t.Errorf("empty snapshot roundtrip: %+v", got)
	}
}

// TestSaveLoadGenerations: saves are atomic renames with monotonic
// generations, old generations are pruned to two, and the sequence
// continues across a reopen (restart).
func TestSaveLoadGenerations(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		snap := &Snapshot{Devices: []DeviceState{{Device: "d", Seq: int64(i)}}}
		_, gen, err := st.Save(snap)
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i) {
			t.Fatalf("gen = %d, want %d", gen, i)
		}
	}
	if gens := st.generations(); len(gens) != keepGenerations {
		t.Fatalf("retained %d generations, want %d", len(gens), keepGenerations)
	}

	snap, gen, err := st.LoadLatest(nil)
	if err != nil || snap == nil {
		t.Fatalf("LoadLatest: %v %v", snap, err)
	}
	if gen != 5 || snap.Devices[0].Seq != 5 {
		t.Fatalf("loaded gen %d seq %d", gen, snap.Devices[0].Seq)
	}

	// Reopen (simulated restart): generation counter must continue, not
	// restart at 1 and overwrite history.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, gen, err := st2.Save(&Snapshot{}); err != nil || gen != 6 {
		t.Fatalf("post-reopen gen = %d (%v), want 6", gen, err)
	}
}

// TestCorruptFallsBack: a flipped byte in the newest generation must fall
// back to the previous one; same for a torn (truncated) write.
func TestCorruptFallsBack(t *testing.T) {
	for _, mode := range []string{"flip", "truncate", "garbage"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := st.Save(&Snapshot{Devices: []DeviceState{{Device: "d", Seq: 1}}}); err != nil {
				t.Fatal(err)
			}
			p2, _, err := st.Save(&Snapshot{Devices: []DeviceState{{Device: "d", Seq: 2}}})
			if err != nil {
				t.Fatal(err)
			}

			b, err := os.ReadFile(p2)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "flip":
				b[len(b)-1] ^= 0xff
			case "truncate":
				b = b[:len(b)/2]
			case "garbage":
				b = []byte("not a checkpoint at all")
			}
			if err := os.WriteFile(p2, b, 0o644); err != nil {
				t.Fatal(err)
			}

			snap, gen, err := st.LoadLatest(nil)
			if err != nil || snap == nil {
				t.Fatalf("LoadLatest after corruption: %v %v", snap, err)
			}
			if gen != 1 || snap.Devices[0].Seq != 1 {
				t.Fatalf("fell back to gen %d seq %d, want gen 1 seq 1", gen, snap.Devices[0].Seq)
			}
		})
	}
}

// TestValidateRejection: LoadLatest consults the caller's validator and
// falls back when it rejects the newest snapshot.
func TestValidateRejection(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	st.Save(&Snapshot{Devices: []DeviceState{{Device: "ok", Seq: 1}}})  //nolint:errcheck
	st.Save(&Snapshot{Devices: []DeviceState{{Device: "bad", Seq: 2}}}) //nolint:errcheck
	snap, gen, err := st.LoadLatest(func(s *Snapshot) error {
		if s.Devices[0].Device == "bad" {
			return ErrCorrupt
		}
		return nil
	})
	if err != nil || snap == nil || gen != 1 {
		t.Fatalf("validator fallback failed: gen=%d snap=%v err=%v", gen, snap, err)
	}
}

// TestNoCheckpoint: an empty directory loads cleanly as "no state".
func TestNoCheckpoint(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	snap, gen, err := st.LoadLatest(nil)
	if snap != nil || gen != 0 || err != nil {
		t.Fatalf("expected empty load, got %v %d %v", snap, gen, err)
	}
}

// TestDecodeRejects: malformed payloads error instead of panicking or
// over-allocating.
func TestDecodeRejects(t *testing.T) {
	valid := Encode(sampleSnapshot())
	cases := [][]byte{
		nil,
		{},
		{0xff},                           // bad version
		valid[:1],                        // header only
		valid[:len(valid)/2],             // truncated mid-device
		append(bytes.Clone(valid), 0x00), // trailing bytes
	}
	// Huge claimed device count must not allocate.
	huge := []byte{payloadVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	cases = append(cases, huge)
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: accepted malformed payload", i)
		}
	}
	if !reflect.DeepEqual(mustDecode(t, valid), mustDecode(t, valid)) {
		t.Error("decode not deterministic")
	}
}

func mustDecode(t *testing.T, b []byte) *Snapshot {
	t.Helper()
	s, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
