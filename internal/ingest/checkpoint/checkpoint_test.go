package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Devices: []DeviceState{
			{Device: "u000", Seq: 1234, Acc: []byte{1, 2, 3, 4}},
			{Device: "u001", Seq: 99, Acc: nil}, // retired: seq only
			{Device: "u002", Seq: 0, Acc: []byte{}},
		},
		Retired: []byte{9, 8, 7},
	}
}

// TestEncodeDecodeRoundtrip: payload codec reproduces the snapshot.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatal(err)
	}
	// Encode normalizes empty non-nil Acc to present-but-empty; compare
	// semantically.
	if len(got.Devices) != len(want.Devices) {
		t.Fatalf("devices = %d, want %d", len(got.Devices), len(want.Devices))
	}
	for i := range want.Devices {
		w, g := want.Devices[i], got.Devices[i]
		if g.Device != w.Device || g.Seq != w.Seq || !bytes.Equal(g.Acc, w.Acc) ||
			(g.Acc == nil) != (w.Acc == nil) {
			t.Errorf("device %d: got %+v want %+v", i, g, w)
		}
	}
	if !bytes.Equal(got.Retired, want.Retired) {
		t.Errorf("retired mismatch")
	}

	empty := &Snapshot{}
	got, err = Decode(Encode(empty))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) != 0 || got.Retired != nil {
		t.Errorf("empty snapshot roundtrip: %+v", got)
	}
}

// TestSaveLoadGenerations: saves are atomic renames with monotonic
// generations, old generations are pruned to two, and the sequence
// continues across a reopen (restart).
func TestSaveLoadGenerations(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		snap := &Snapshot{Devices: []DeviceState{{Device: "d", Seq: int64(i)}}}
		_, gen, err := st.Save(snap)
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i) {
			t.Fatalf("gen = %d, want %d", gen, i)
		}
	}
	if gens := st.generations(); len(gens) != keepGenerations {
		t.Fatalf("retained %d generations, want %d", len(gens), keepGenerations)
	}

	snap, gen, err := st.LoadLatest(nil)
	if err != nil || snap == nil {
		t.Fatalf("LoadLatest: %v %v", snap, err)
	}
	if gen != 5 || snap.Devices[0].Seq != 5 {
		t.Fatalf("loaded gen %d seq %d", gen, snap.Devices[0].Seq)
	}

	// Reopen (simulated restart): generation counter must continue, not
	// restart at 1 and overwrite history.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, gen, err := st2.Save(&Snapshot{}); err != nil || gen != 6 {
		t.Fatalf("post-reopen gen = %d (%v), want 6", gen, err)
	}
}

// TestCorruptFallsBack: a flipped byte in the newest generation must fall
// back to the previous one; same for a torn (truncated) write.
func TestCorruptFallsBack(t *testing.T) {
	for _, mode := range []string{"flip", "truncate", "garbage"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := st.Save(&Snapshot{Devices: []DeviceState{{Device: "d", Seq: 1}}}); err != nil {
				t.Fatal(err)
			}
			p2, _, err := st.Save(&Snapshot{Devices: []DeviceState{{Device: "d", Seq: 2}}})
			if err != nil {
				t.Fatal(err)
			}

			b, err := os.ReadFile(p2)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "flip":
				b[len(b)-1] ^= 0xff
			case "truncate":
				b = b[:len(b)/2]
			case "garbage":
				b = []byte("not a checkpoint at all")
			}
			if err := os.WriteFile(p2, b, 0o644); err != nil {
				t.Fatal(err)
			}

			snap, gen, err := st.LoadLatest(nil)
			if err != nil || snap == nil {
				t.Fatalf("LoadLatest after corruption: %v %v", snap, err)
			}
			if gen != 1 || snap.Devices[0].Seq != 1 {
				t.Fatalf("fell back to gen %d seq %d, want gen 1 seq 1", gen, snap.Devices[0].Seq)
			}
		})
	}
}

// TestValidateRejection: LoadLatest consults the caller's validator and
// falls back when it rejects the newest snapshot.
func TestValidateRejection(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	st.Save(&Snapshot{Devices: []DeviceState{{Device: "ok", Seq: 1}}})  //nolint:errcheck
	st.Save(&Snapshot{Devices: []DeviceState{{Device: "bad", Seq: 2}}}) //nolint:errcheck
	snap, gen, err := st.LoadLatest(func(s *Snapshot) error {
		if s.Devices[0].Device == "bad" {
			return ErrCorrupt
		}
		return nil
	})
	if err != nil || snap == nil || gen != 1 {
		t.Fatalf("validator fallback failed: gen=%d snap=%v err=%v", gen, snap, err)
	}
}

// TestNoCheckpoint: an empty directory loads cleanly as "no state".
func TestNoCheckpoint(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	snap, gen, err := st.LoadLatest(nil)
	if snap != nil || gen != 0 || err != nil {
		t.Fatalf("expected empty load, got %v %d %v", snap, gen, err)
	}
}

// TestDecodeRejects: malformed payloads error instead of panicking or
// over-allocating.
func TestDecodeRejects(t *testing.T) {
	valid := Encode(sampleSnapshot())
	cases := [][]byte{
		nil,
		{},
		{0xff},                           // bad version
		valid[:1],                        // header only
		valid[:len(valid)/2],             // truncated mid-device
		append(bytes.Clone(valid), 0x00), // trailing bytes
	}
	// Huge claimed device count must not allocate.
	huge := []byte{payloadVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	cases = append(cases, huge)
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: accepted malformed payload", i)
		}
	}
	if !reflect.DeepEqual(mustDecode(t, valid), mustDecode(t, valid)) {
		t.Error("decode not deterministic")
	}
}

func mustDecode(t *testing.T, b []byte) *Snapshot {
	t.Helper()
	s, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// encodeV1 hand-builds a pre-ledger (v1) payload: the exact bytes a PR-6
// binary would have written. Kept independent of Encode so the
// forward-compat contract is pinned against the wire layout, not against
// whatever the current encoder happens to emit.
func encodeV1(s *Snapshot) []byte {
	b := []byte{payloadV1}
	b = binary.AppendUvarint(b, uint64(len(s.Devices)))
	for i := range s.Devices {
		d := &s.Devices[i]
		b = binary.AppendUvarint(b, uint64(len(d.Device)))
		b = append(b, d.Device...)
		b = binary.AppendUvarint(b, uint64(d.Seq))
		if d.Acc == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = binary.AppendUvarint(b, uint64(len(d.Acc)))
			b = append(b, d.Acc...)
		}
	}
	if s.Retired == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(len(s.Retired)))
		b = append(b, s.Retired...)
	}
	return b
}

// TestDecodeV1ForwardCompat: old (pre-ledger) payloads must decode through
// the new version-sniffing decoder with no ledger and a zero fence, and
// trailing bytes after a v1 body must still be rejected (a truncated v2
// body must never pass as a valid v1 one).
func TestDecodeV1ForwardCompat(t *testing.T) {
	want := sampleSnapshot()
	raw := encodeV1(want)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) != len(want.Devices) || !bytes.Equal(got.Retired, want.Retired) {
		t.Fatalf("v1 decode: %+v", got)
	}
	if got.Ledger != nil || got.Fence != (Fence{}) {
		t.Fatalf("v1 decode invented v2 state: ledger=%v fence=%+v", got.Ledger, got.Fence)
	}
	if _, err := Decode(append(bytes.Clone(raw), 0x01)); err == nil {
		t.Error("v1 body with trailing bytes accepted")
	}

	// And through the full file container, as a restart would see it.
	full := append([]byte(nil), fileMagic...)
	full = binary.LittleEndian.AppendUint32(full, crc32.ChecksumIEEE(raw))
	full = binary.AppendUvarint(full, uint64(len(raw)))
	full = append(full, raw...)
	if _, err := DecodeFile(full); err != nil {
		t.Fatalf("v1 file rejected by new decoder: %v", err)
	}
}

// TestLedgerRoundtrip: v2 ledger + fence round-trip exactly, blob CRCs are
// enforced, and encoding is deterministic regardless of ledger input order.
func TestLedgerRoundtrip(t *testing.T) {
	blob := []byte{5, 4, 3, 2, 1}
	snap := &Snapshot{
		Devices: []DeviceState{{Device: "live", Seq: 7, Acc: []byte{1}}},
		Ledger: []RetiredRecord{
			{Device: "z-dev", Seq: 42, CRC: crc32.ChecksumIEEE(blob), Blob: blob},
			{Device: "a-dev", Seq: 9, CRC: crc32.ChecksumIEEE(nil), Blob: nil},
		},
		Fence: Fence{Epoch: 3, Incarnation: "n2.1234.567"},
	}
	got, err := Decode(Encode(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ledger) != 2 || got.Ledger[0].Device != "a-dev" || got.Ledger[1].Device != "z-dev" {
		t.Fatalf("ledger order: %+v", got.Ledger)
	}
	if got.Ledger[1].Seq != 42 || !bytes.Equal(got.Ledger[1].Blob, blob) {
		t.Fatalf("ledger entry: %+v", got.Ledger[1])
	}
	if got.Fence != snap.Fence {
		t.Fatalf("fence: %+v, want %+v", got.Fence, snap.Fence)
	}

	// A flipped blob bit must fail the per-entry CRC.
	enc := Encode(snap)
	idx := bytes.Index(enc, blob)
	if idx < 0 {
		t.Fatal("blob not found in encoding")
	}
	enc[idx] ^= 0x80
	if _, err := Decode(enc); err == nil {
		t.Error("corrupt ledger blob accepted")
	}

	// Truncation anywhere in the ledger/fence tail must be rejected.
	full := Encode(snap)
	v1len := len(encodeV1(&Snapshot{Devices: snap.Devices}))
	for cut := v1len; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncated at %d/%d accepted", cut, len(full))
		}
	}
}

// TestTombstone: write/load round trip, atomic replace, missing-is-nil, and
// the archive flow that moves shipped generations out of the way.
func TestTombstone(t *testing.T) {
	dir := t.TempDir()
	if tomb, err := LoadTombstone(dir); tomb != nil || err != nil {
		t.Fatalf("empty dir: %v %v", tomb, err)
	}
	want := Tombstone{Node: "n2", Incarnation: "n2.1.2", Generation: 4, Epoch: 9, UnixNano: 111}
	if err := WriteTombstone(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTombstone(dir)
	if err != nil || got == nil || *got != want {
		t.Fatalf("round trip: %+v %v", got, err)
	}

	// Corrupt tombstone must surface an error, not read as absent.
	if err := os.WriteFile(filepath.Join(dir, TombstoneName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTombstone(dir); err == nil {
		t.Fatal("corrupt tombstone read as valid")
	}
	if err := WriteTombstone(dir, want); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := st.Save(&Snapshot{Devices: []DeviceState{{Device: "d", Seq: int64(i + 1)}}}); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := st.ArchiveShipped(&want)
	if err != nil {
		t.Fatal(err)
	}
	if snap, gen, err := st.LoadLatest(nil); snap != nil || gen != 0 || err != nil {
		t.Fatalf("store not empty after archive: %v %d %v", snap, gen, err)
	}
	if tomb, err := LoadTombstone(dir); tomb != nil || err != nil {
		t.Fatalf("tombstone not archived: %v %v", tomb, err)
	}
	if _, err := os.Stat(filepath.Join(sub, TombstoneName)); err != nil {
		t.Fatalf("archived tombstone missing: %v", err)
	}
	// Generation numbering continues above the shipped generation.
	if _, gen, err := st.Save(&Snapshot{}); err != nil || gen != 4 {
		t.Fatalf("post-archive gen = %d (%v), want 4", gen, err)
	}
}
