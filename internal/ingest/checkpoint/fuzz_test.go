package checkpoint

import (
	"hash/crc32"
	"os"
	"testing"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// FuzzCheckpointDecoder feeds arbitrary bytes through the full checkpoint
// decode path — file container, snapshot payload, and the nested analysis
// accumulator/result blobs — exactly as a recovering server would. It must
// return clean errors on malformed input, never panic or allocate beyond
// the declared caps.
func FuzzCheckpointDecoder(f *testing.F) {
	// Seed with a realistic full checkpoint file.
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	acc := analysis.NewStreamAccumulator("u000", opts)
	for _, r := range []trace.Record{
		{Type: trace.RecProcState, TS: 1000, App: 3, State: trace.StateService},
		{Type: trace.RecScreen, TS: 1500, ScreenOn: true},
		{Type: trace.RecPacket, TS: 2000, App: 3, Dir: trace.DirUp,
			Net: trace.NetCellular, State: trace.StateService,
			Payload: []byte{0x45, 0, 0, 20, 0, 1, 0, 0, 64, 6, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}},
	} {
		r := r
		acc.Feed(&r)
	}
	retired := analysis.NewStreamResult("fleet")
	retBlob := retired.AppendBinary(nil)
	snap := &Snapshot{
		Devices: []DeviceState{
			{Device: "u000", Seq: 3, Acc: acc.AppendState(nil)},
			{Device: "u001", Seq: 17},
		},
		Retired: retBlob,
		Ledger: []RetiredRecord{
			{Device: "u001", Seq: 17, CRC: crc32.ChecksumIEEE(retBlob), Blob: retBlob},
		},
		Fence: Fence{Epoch: 2, Incarnation: "n1.1.1"},
	}
	payload := Encode(snap)
	hdr := append([]byte(nil), fileMagic...)
	f.Add(append(hdr, payload...)) // wrong header shape: exercises torn/corrupt paths
	f.Add(payload)
	f.Add([]byte("NECKPT1\n"))
	f.Add([]byte{})
	// A v2 payload truncated inside the ledger section: the decoder must
	// reject it as corrupt, never fall back to reading it as a v1 body.
	v1len := len(Encode(&Snapshot{Devices: snap.Devices, Retired: snap.Retired})) - len(retBlob) - 16
	if v1len < 1 {
		v1len = 1
	}
	f.Add(payload[:v1len+(len(payload)-v1len)/2])
	// And one truncated mid-fence (last few bytes gone).
	f.Add(payload[:len(payload)-3])

	// A fully valid file as produced by Save.
	st, err := Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	path, _, err := st.Save(snap)
	if err != nil {
		f.Fatal(err)
	}
	if b, err := os.ReadFile(path); err == nil {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeFile(data)
		if err != nil {
			// Also exercise the bare payload decoder on the same bytes.
			if s2, err2 := Decode(data); err2 == nil {
				snap = s2
			} else {
				return
			}
		}
		// Validate nested blobs the way Server restore does.
		opts := energy.DefaultOptions()
		opts.KeepPackets = false
		for _, d := range snap.Devices {
			if d.Acc != nil {
				a, err := analysis.RestoreStreamAccumulator(d.Acc, opts)
				if err != nil {
					continue
				}
				// A restored accumulator must be feedable.
				r := trace.Record{Type: trace.RecScreen, TS: 1 << 40, ScreenOn: true}
				a.Feed(&r)
			}
		}
		if snap.Retired != nil {
			analysis.DecodeStreamResult(snap.Retired) //nolint:errcheck // must not panic
		}
		for _, r := range snap.Ledger {
			analysis.DecodeStreamResult(r.Blob) //nolint:errcheck // must not panic
		}
	})
}
