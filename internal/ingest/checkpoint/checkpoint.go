// Package checkpoint implements the ingest daemon's crash-safe durability
// layer: periodic snapshots of every shard's analysis state and per-device
// record sequence numbers, written as atomically-renamed, CRC-protected
// generation files.
//
// The failure model is fail-stop (SIGKILL, OOM, power loss) at any byte
// boundary. The guarantees:
//
//   - A checkpoint file is either fully valid or detectably invalid: the
//     payload is covered by a CRC32 and an explicit length, so torn writes
//     and bit rot are caught at load time, never half-applied.
//   - Writes are atomic at the filesystem level: payloads go to a temp file
//     in the same directory, are fsynced, and are renamed into place.
//   - The two most recent generations are retained. A corrupt or torn
//     newest generation falls back to the previous one, so a crash *during*
//     a checkpoint write costs at most one checkpoint interval of progress.
//   - Generation numbers are monotonic across restarts (the store scans the
//     directory on open), so a recovered daemon never overwrites history it
//     might still need.
//
// The store is deliberately ignorant of what the payload means: device
// entries carry opaque accumulator-state blobs (internal/analysis encodes
// and validates them), so this package has no dependency on the analysis
// types and the container format can be fuzzed in isolation.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Container format:
//
//	file    := magic crc32le payloadLen:uvarint payload
//	payload := version:byte body
//	body v1 := nDevices:uvarint device* hasRetired:byte [retiredBlob]
//	body v2 := <v1 body> nLedger:uvarint ledger* fence
//	device  := devLen:uvarint dev:bytes seq:uvarint hasAcc:byte [accLen:uvarint acc:bytes]
//	ledger  := devLen:uvarint dev:bytes seq:uvarint crc32le:4 blobLen:uvarint blob:bytes
//	fence   := epoch:uvarint incLen:uvarint inc:bytes
//	blob    := len:uvarint bytes
//
// A v2 file is a v1 file with the version byte bumped and the retirement
// ledger + fence appended: the decoder sniffs the version byte, so
// pre-ledger (v1) files restore forever, while v2-only state degrades to
// "no ledger, no fence" — exactly the PR-6 semantics those files were
// written under.
var fileMagic = []byte("NECKPT1\n")

const (
	payloadV1      = 1
	payloadV2      = 2
	payloadVersion = payloadV2
	// maxIncarnation caps the fence incarnation-string length.
	maxIncarnation = 256
	// MaxPayload caps a checkpoint payload (1 GiB); a length field beyond it
	// means the header cannot be trusted.
	MaxPayload = 1 << 30
	// maxDevices caps the device-entry count a decoder will allocate for.
	maxDevices = 1 << 22
	// maxDeviceID matches the ingest wire protocol's device-ID cap.
	maxDeviceID = 4096
	// keepGenerations is how many recent checkpoint files are retained.
	keepGenerations = 2
)

// Decode/load errors.
var (
	// ErrCorrupt means a checkpoint file failed its CRC or structural
	// validation — fall back to an older generation.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrTorn means the file ended before the declared payload length — a
	// write was interrupted mid-stream.
	ErrTorn = errors.New("checkpoint: torn write")
)

// DeviceState is one device's durable state: how many records the server
// has incorporated (the resume/dedup sequence number) and, for devices with
// an in-flight stream, the serialized analysis accumulator. Acc is nil for
// devices whose stream has been finalized (their contribution lives in the
// retired aggregate).
type DeviceState struct {
	Device string
	Seq    int64
	Acc    []byte
}

// RetiredRecord is one device's retirement entry: the final sequence number
// its stream closed at and the device's own finalized, serialized
// StreamResult. Carrying the per-device blob (rather than folding it into a
// blind aggregate) is what lets a handoff receiver dedup a retired device
// positionally, exactly like a live entry: if the receiver has already seen
// seq >= Seq for the device, the entry is stale and is NOT merged. CRC is
// crc32.ChecksumIEEE(Blob), verified at decode time.
type RetiredRecord struct {
	Device string
	Seq    int64
	CRC    uint32
	Blob   []byte
}

// Fence identifies which process lifetime, under which cluster epoch, wrote
// a checkpoint. The aggregator records it in a tombstone when it ships the
// file to survivors; a rejoining node compares its restored fence against
// the tombstone to detect "my state was already handed off" and archive
// instead of double-serving.
type Fence struct {
	Epoch       uint64
	Incarnation string
}

// Snapshot is one checkpoint's logical content.
type Snapshot struct {
	Devices []DeviceState
	// Retired is the serialized merged StreamResult of finalized device
	// streams that have no per-device ledger attribution: state restored
	// from pre-ledger (v1) checkpoints or adopted from legacy transfers.
	// Nil when there is no such state.
	Retired []byte
	// Ledger holds one RetiredRecord per finalized device (v2 files only;
	// nil after decoding a v1 file).
	Ledger []RetiredRecord
	// Fence stamps the writing process and cluster epoch (zero value on v1
	// files and standalone nodes).
	Fence Fence
}

// Encode serializes a snapshot payload (without the file header). Ledger
// entries are sorted by device in place so identical logical snapshots
// produce identical bytes.
func Encode(s *Snapshot) []byte {
	n := 64 + len(s.Fence.Incarnation)
	for i := range s.Devices {
		n += len(s.Devices[i].Device) + len(s.Devices[i].Acc) + 16
	}
	for i := range s.Ledger {
		n += len(s.Ledger[i].Device) + len(s.Ledger[i].Blob) + 24
	}
	sort.Slice(s.Ledger, func(i, j int) bool { return s.Ledger[i].Device < s.Ledger[j].Device })
	b := make([]byte, 0, n+len(s.Retired))
	b = append(b, payloadVersion)
	b = binary.AppendUvarint(b, uint64(len(s.Devices)))
	for i := range s.Devices {
		d := &s.Devices[i]
		b = binary.AppendUvarint(b, uint64(len(d.Device)))
		b = append(b, d.Device...)
		b = binary.AppendUvarint(b, uint64(d.Seq))
		if d.Acc == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = binary.AppendUvarint(b, uint64(len(d.Acc)))
			b = append(b, d.Acc...)
		}
	}
	if s.Retired == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(len(s.Retired)))
		b = append(b, s.Retired...)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Ledger)))
	for i := range s.Ledger {
		r := &s.Ledger[i]
		b = binary.AppendUvarint(b, uint64(len(r.Device)))
		b = append(b, r.Device...)
		b = binary.AppendUvarint(b, uint64(r.Seq))
		b = binary.LittleEndian.AppendUint32(b, r.CRC)
		b = binary.AppendUvarint(b, uint64(len(r.Blob)))
		b = append(b, r.Blob...)
	}
	b = binary.AppendUvarint(b, s.Fence.Epoch)
	b = binary.AppendUvarint(b, uint64(len(s.Fence.Incarnation)))
	b = append(b, s.Fence.Incarnation...)
	return b
}

// Decode parses a snapshot payload. It validates structure and bounds; the
// opaque blobs are returned as-is for the caller to validate.
func Decode(b []byte) (*Snapshot, error) {
	cur := b
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(cur)
		if n <= 0 {
			return 0, false
		}
		cur = cur[n:]
		return v, true
	}
	take := func(n uint64) ([]byte, bool) {
		if uint64(len(cur)) < n {
			return nil, false
		}
		out := cur[:n]
		cur = cur[n:]
		return out, true
	}

	if len(cur) < 1 || (cur[0] != payloadV1 && cur[0] != payloadV2) {
		return nil, ErrCorrupt
	}
	version := cur[0]
	cur = cur[1:]
	nDev, ok := uvarint()
	if !ok || nDev > maxDevices {
		return nil, ErrCorrupt
	}
	s := &Snapshot{}
	for i := uint64(0); i < nDev; i++ {
		dlen, ok := uvarint()
		if !ok || dlen == 0 || dlen > maxDeviceID {
			return nil, ErrCorrupt
		}
		dev, ok := take(dlen)
		if !ok {
			return nil, ErrCorrupt
		}
		seq, ok := uvarint()
		if !ok {
			return nil, ErrCorrupt
		}
		d := DeviceState{Device: string(dev), Seq: int64(seq)}
		flag, ok := take(1)
		if !ok || flag[0] > 1 {
			return nil, ErrCorrupt
		}
		if flag[0] == 1 {
			alen, ok := uvarint()
			if !ok || alen > MaxPayload {
				return nil, ErrCorrupt
			}
			acc, ok := take(alen)
			if !ok {
				return nil, ErrCorrupt
			}
			d.Acc = acc
		}
		s.Devices = append(s.Devices, d)
	}
	flag, ok := take(1)
	if !ok || flag[0] > 1 {
		return nil, ErrCorrupt
	}
	if flag[0] == 1 {
		rlen, ok := uvarint()
		if !ok || rlen > MaxPayload {
			return nil, ErrCorrupt
		}
		ret, ok := take(rlen)
		if !ok {
			return nil, ErrCorrupt
		}
		s.Retired = ret
	}
	if version >= payloadV2 {
		nLedger, ok := uvarint()
		if !ok || nLedger > maxDevices {
			return nil, ErrCorrupt
		}
		for i := uint64(0); i < nLedger; i++ {
			dlen, ok := uvarint()
			if !ok || dlen == 0 || dlen > maxDeviceID {
				return nil, ErrCorrupt
			}
			dev, ok := take(dlen)
			if !ok {
				return nil, ErrCorrupt
			}
			seq, ok := uvarint()
			if !ok {
				return nil, ErrCorrupt
			}
			crcb, ok := take(4)
			if !ok {
				return nil, ErrCorrupt
			}
			blen, ok := uvarint()
			if !ok || blen > MaxPayload {
				return nil, ErrCorrupt
			}
			blob, ok := take(blen)
			if !ok {
				return nil, ErrCorrupt
			}
			r := RetiredRecord{
				Device: string(dev), Seq: int64(seq),
				CRC: binary.LittleEndian.Uint32(crcb), Blob: blob,
			}
			if crc32.ChecksumIEEE(r.Blob) != r.CRC {
				return nil, ErrCorrupt
			}
			s.Ledger = append(s.Ledger, r)
		}
		epoch, ok := uvarint()
		if !ok {
			return nil, ErrCorrupt
		}
		ilen, ok := uvarint()
		if !ok || ilen > maxIncarnation {
			return nil, ErrCorrupt
		}
		inc, ok := take(ilen)
		if !ok {
			return nil, ErrCorrupt
		}
		s.Fence = Fence{Epoch: epoch, Incarnation: string(inc)}
	}
	if len(cur) != 0 {
		return nil, ErrCorrupt
	}
	return s, nil
}

// Store writes and loads generation files in one directory.
type Store struct {
	dir string
	gen uint64 // highest generation seen or written
}

// Open prepares a checkpoint store in dir, creating it if needed, and scans
// existing generation files so new writes continue the sequence.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir}
	for _, g := range s.generations() {
		if g > s.gen {
			s.gen = g
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Generation returns the highest generation seen or written so far.
func (s *Store) Generation() uint64 { return s.gen }

func genPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ck-%08d.ck", gen))
}

// generations lists existing generation numbers, ascending.
func (s *Store) generations() []uint64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		var g uint64
		if n, err := fmt.Sscanf(e.Name(), "ck-%d.ck", &g); n == 1 && err == nil &&
			e.Name() == fmt.Sprintf("ck-%08d.ck", g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// EncodeFile serializes a snapshot as complete checkpoint-file bytes
// (header + CRC + payload) — exactly what Save writes to disk. The cluster
// tier ships these bytes over the wire during ownership handoff; the
// receiver verifies them with DecodeFile, so a transfer enjoys the same
// torn/corrupt detection as a crash recovery.
func EncodeFile(snap *Snapshot) ([]byte, error) {
	payload := Encode(snap)
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("checkpoint: payload too large: %d", len(payload))
	}
	b := append([]byte(nil), fileMagic...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	b = binary.AppendUvarint(b, uint64(len(payload)))
	return append(b, payload...), nil
}

// Save atomically writes snap as the next generation and prunes old files.
// It returns the path and generation written. The sequence is: temp file in
// the same directory, write header+payload, fsync, rename, fsync directory
// — a crash at any point leaves either the previous generation set intact
// or the new file fully in place.
func (s *Store) Save(snap *Snapshot) (path string, gen uint64, err error) {
	file, err := EncodeFile(snap)
	if err != nil {
		return "", 0, err
	}

	gen = s.gen + 1
	path = genPath(s.dir, gen)
	tmp, err := os.CreateTemp(s.dir, "ck-*.tmp")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(file); err != nil {
		tmp.Close()
		return "", 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", 0, err
	}
	if err := tmp.Close(); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", 0, err
	}
	syncDir(s.dir)
	s.gen = gen

	// Prune: keep the newest keepGenerations files.
	gens := s.generations()
	for i := 0; i+keepGenerations < len(gens); i++ {
		os.Remove(genPath(s.dir, gens[i])) //nolint:errcheck // best effort
	}
	return path, gen, nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory; rename already atomic
		d.Close()
	}
}

// LoadFile reads and validates one checkpoint file.
func LoadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeFile(b)
}

// DecodeFile parses and validates complete checkpoint-file bytes: magic,
// CRC, declared payload length, then the payload structure. It is the
// receive-side verification for checkpoint handoff over the wire.
func DecodeFile(b []byte) (*Snapshot, error) {
	if len(b) < len(fileMagic)+4 {
		return nil, ErrTorn
	}
	for i := range fileMagic {
		if b[i] != fileMagic[i] {
			return nil, ErrCorrupt
		}
	}
	b = b[len(fileMagic):]
	wantCRC := binary.LittleEndian.Uint32(b)
	b = b[4:]
	plen, n := binary.Uvarint(b)
	if n <= 0 || plen > MaxPayload {
		return nil, ErrCorrupt
	}
	b = b[n:]
	if uint64(len(b)) < plen {
		return nil, ErrTorn
	}
	if uint64(len(b)) > plen {
		return nil, ErrCorrupt
	}
	payload := b[:plen]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, ErrCorrupt
	}
	return Decode(payload)
}

// LoadLatestRaw returns the raw file bytes of the newest generation that
// passes container validation, along with its generation number — the
// handoff source: the exact bytes a dead node last persisted, ready to ship
// to the surviving owners. It returns (nil, 0, nil) when no valid
// checkpoint exists.
func (s *Store) LoadLatestRaw() ([]byte, uint64, error) {
	gens := s.generations()
	for i := len(gens) - 1; i >= 0; i-- {
		b, err := os.ReadFile(genPath(s.dir, gens[i]))
		if err != nil {
			continue
		}
		if _, err := DecodeFile(b); err != nil {
			continue
		}
		return b, gens[i], nil
	}
	return nil, 0, nil
}

// TombstoneName is the marker file the aggregator (or a draining node)
// writes into a checkpoint directory after the newest generation has been
// shipped to survivors. A restarting node that finds a tombstone covering
// its newest generation knows its state already lives elsewhere and must
// archive, not restore.
const TombstoneName = "handoff.tomb"

// Tombstone records one completed handoff of a checkpoint directory.
type Tombstone struct {
	// Node is the member ID whose state was shipped.
	Node string `json:"node"`
	// Incarnation is the fence incarnation of the shipped checkpoint file
	// (empty for pre-fence v1 files).
	Incarnation string `json:"incarnation"`
	// Generation is the checkpoint generation that was shipped. Any
	// generation <= this is covered by the handoff; a strictly newer
	// generation means the node kept writing after the ship and its tail
	// was never transferred.
	Generation uint64 `json:"generation"`
	// Epoch is the cluster epoch at ship time.
	Epoch uint64 `json:"epoch"`
	// UnixNano is the wall-clock ship time (diagnostic only).
	UnixNano int64 `json:"unix_nano"`
}

// WriteTombstone atomically writes (or replaces) the directory's handoff
// tombstone with the same temp+fsync+rename discipline as Save.
func WriteTombstone(dir string, t Tombstone) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "tomb-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, TombstoneName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// LoadTombstone reads the directory's handoff tombstone. A missing file (or
// missing directory) is (nil, nil); an unreadable or malformed file is an
// error — the caller must decide, not silently restore over it.
func LoadTombstone(dir string) (*Tombstone, error) {
	b, err := os.ReadFile(filepath.Join(dir, TombstoneName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var t Tombstone
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("%w: tombstone: %v", ErrCorrupt, err)
	}
	return &t, nil
}

// ArchiveShipped moves every generation file plus the tombstone into a
// `shipped-<generation>` subdirectory, leaving the store empty for a clean
// restart. The generation counter keeps counting from where it was, so
// post-archive checkpoints are strictly newer than anything a stale
// tombstone could cover. Returns the archive directory.
func (s *Store) ArchiveShipped(t *Tombstone) (string, error) {
	sub := filepath.Join(s.dir, fmt.Sprintf("shipped-%08d", t.Generation))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	for _, g := range s.generations() {
		p := genPath(s.dir, g)
		if err := os.Rename(p, filepath.Join(sub, filepath.Base(p))); err != nil {
			return "", err
		}
	}
	tomb := filepath.Join(s.dir, TombstoneName)
	if _, err := os.Stat(tomb); err == nil {
		if err := os.Rename(tomb, filepath.Join(sub, TombstoneName)); err != nil {
			return "", err
		}
	}
	syncDir(s.dir)
	return sub, nil
}

// LoadLatest returns the newest generation that passes both the container
// checks and the caller's validate function (nil to skip). Invalid or torn
// generations are skipped — this is the fall-back-on-corruption path. It
// returns (nil, 0, nil) when no valid checkpoint exists.
func (s *Store) LoadLatest(validate func(*Snapshot) error) (*Snapshot, uint64, error) {
	gens := s.generations()
	for i := len(gens) - 1; i >= 0; i-- {
		snap, err := LoadFile(genPath(s.dir, gens[i]))
		if err != nil {
			continue
		}
		if validate != nil {
			if err := validate(snap); err != nil {
				continue
			}
		}
		return snap, gens[i], nil
	}
	return nil, 0, nil
}
