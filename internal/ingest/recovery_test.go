package ingest

import (
	"bufio"
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// TestCrashRecovery is the tentpole integration test: a fleet streams
// through resumable sessions while the server checkpoints aggressively;
// mid-stream the server is killed (no drain, no finalize — the fail-stop
// model) and a NEW server with a DIFFERENT shard count recovers from the
// checkpoint directory on a different port. Sessions reconnect, resume and
// finish, and the recovered final headline must match the batch pipeline
// over the same dataset — crash, recovery and retransmission must be
// invisible in the result.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := synthgen.Small(4, 2)
	dts := synthgen.GenerateInMemory(cfg)
	var sent int64
	for _, dt := range dts {
		sent += int64(len(dt.Records))
	}

	mk := func(shards int) *Server {
		return startServer(t, Config{
			Shards: shards, QueueDepth: 16, BatchSize: 16,
			CheckpointDir: dir, CheckpointInterval: 25 * time.Millisecond,
		})
	}
	a := mk(2)
	var addr atomic.Value
	addr.Store(a.Addr().String())

	var wg sync.WaitGroup
	stats := make([]SessionStats, len(dts))
	errs := make([]error, len(dts))
	for i, dt := range dts {
		wg.Add(1)
		go func(i int, dt *trace.DeviceTrace) {
			defer wg.Done()
			stats[i], errs[i] = StreamTrace(SessionConfig{
				AddrFunc: func() string { return addr.Load().(string) },
				Device:   dt.Device,
				Start:    dt.Start,
				Deadline: 2 * time.Minute,
				Backoff:  Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond},
				Pace: func(j int) time.Duration {
					if j%8 == 0 {
						return 400 * time.Microsecond
					}
					return 0
				},
			}, dt.Records)
		}(i, dt)
	}

	// Let the fleet get roughly a third of the way in, with at least one
	// checkpoint on disk, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := a.Stats(false)
		if st.Records >= sent/3 && st.Checkpoint != nil && st.Checkpoint.Generation >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Kill()

	b := mk(3) // different shard count: restore must re-place devices
	addr.Store(b.Addr().String())
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %s: %v", dts[i].Device, err)
		}
	}
	var conns, resumed int
	for _, st := range stats {
		conns += st.Conns
		resumed += st.Resumed
	}
	if resumed == 0 || conns <= len(dts) {
		t.Errorf("no session resumed (conns=%d, resumed=%d) — crash landed too early/late", conns, resumed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := b.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Every record accounted for exactly once, per device and in total.
	if got := b.counters.records.Load(); got != sent {
		t.Fatalf("records accepted = %d, sent = %d", got, sent)
	}
	for _, dt := range dts {
		if got := b.DeviceRecords(dt.Device); got != int64(len(dt.Records)) {
			t.Errorf("device %s: accepted %d, sent %d", dt.Device, got, len(dt.Records))
		}
	}

	// Batch reference over the identical dataset.
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ComputeHeadline(devs)
	if d := math.Abs(final.Ledger.Total - want.TotalEnergyJ); d > 1e-6*(1+want.TotalEnergyJ) {
		t.Errorf("total energy: recovered %v vs batch %v", final.Ledger.Total, want.TotalEnergyJ)
	}
	if d := math.Abs(final.Ledger.BackgroundFraction() - want.BackgroundFraction); d > 0.01*want.BackgroundFraction {
		t.Errorf("background fraction: recovered %v vs batch %v", final.Ledger.BackgroundFraction(), want.BackgroundFraction)
	}
	if d := math.Abs(final.FirstMinuteFraction(0.8) - want.FirstMinute.Fraction); d > 1e-9 {
		t.Errorf("first minute: recovered %v vs batch %v", final.FirstMinuteFraction(0.8), want.FirstMinute.Fraction)
	}
}

// TestResumeAfterDisconnect: a client that drops mid-stream without FIN
// must be able to reconnect, learn the server's accepted count, and finish
// the stream with nothing lost and nothing double-counted.
func TestResumeAfterDisconnect(t *testing.T) {
	s := startServer(t, Config{Shards: 1, QueueDepth: 8, BatchSize: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	n := len(dt.Records)
	cut := n / 2

	c, err := Dial(s.Addr().String(), dt.Device, dt.Start, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.ResumeSeq != 0 {
		t.Fatalf("fresh stream resume seq = %d", c.ResumeSeq)
	}
	for i := 0; i < cut; i++ {
		if err := c.Send(&dt.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.CloseAbort() //nolint:errcheck

	// Wait for the handler to flush its partial batch into the shard.
	deadline := time.Now().Add(5 * time.Second)
	for s.DeviceRecords(dt.Device) < int64(cut) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.DeviceRecords(dt.Device); got != int64(cut) {
		t.Fatalf("accepted before resume = %d, want %d", got, cut)
	}

	// Reconnect claiming LESS progress than the server has (hint 0): the
	// server's ack must override and point at the real resume point.
	c2, err := Dial(s.Addr().String(), dt.Device, dt.Start, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ResumeSeq != int64(cut) {
		t.Fatalf("resume seq = %d, want %d", c2.ResumeSeq, cut)
	}
	for i := cut; i < n; i++ {
		if err := c2.Send(&dt.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.DeviceRecords(dt.Device); got != int64(n) {
		t.Fatalf("accepted after resume = %d, want %d", got, n)
	}
	if got := s.counters.resumes.Load(); got != 1 {
		t.Errorf("resumes = %d, want 1", got)
	}

	// The finalized stream must equal a continuous clean run.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	acc := analysis.NewStreamAccumulator(dt.Device, batchOpts())
	for i := range dt.Records {
		acc.Feed(&dt.Records[i])
	}
	want := acc.Finish()
	if d := math.Abs(final.Ledger.Total - want.Ledger.Total); d > 1e-9*(1+want.Ledger.Total) {
		t.Errorf("resumed total %v, continuous %v", final.Ledger.Total, want.Ledger.Total)
	}
}

// TestSessionSurvivesServerRestart drives the full client-side loop
// (StreamTrace) across a graceful-kill/restart with no checkpointing at
// all: everything retransmits from seq 0 and the dedup layer must make
// that harmless — the degenerate recovery path.
func TestSessionSurvivesServerRestart(t *testing.T) {
	a := startServer(t, Config{Shards: 1, QueueDepth: 8, BatchSize: 8})
	var addr atomic.Value
	addr.Store(a.Addr().String())
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]

	done := make(chan struct{})
	var st SessionStats
	var serr error
	go func() {
		defer close(done)
		st, serr = StreamTrace(SessionConfig{
			AddrFunc: func() string { return addr.Load().(string) },
			Device:   dt.Device,
			Start:    dt.Start,
			Deadline: time.Minute,
			Backoff:  Backoff{Base: 2 * time.Millisecond, Max: 40 * time.Millisecond},
			Pace: func(i int) time.Duration {
				return 200 * time.Microsecond
			},
		}, dt.Records)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for a.counters.records.Load() < int64(len(dt.Records))/4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.Kill() // no checkpoint dir: all server state is lost

	b := startServer(t, Config{Shards: 1, QueueDepth: 8, BatchSize: 8})
	addr.Store(b.Addr().String())
	<-done
	if serr != nil {
		t.Fatal(serr)
	}
	if st.Conns < 2 {
		t.Errorf("session used %d conns, want >= 2", st.Conns)
	}
	if got := b.DeviceRecords(dt.Device); got != int64(len(dt.Records)) {
		t.Fatalf("server B accepted %d, want %d", got, len(dt.Records))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimitSheds: with a per-device admission budget, the second
// immediate connection must be refused with an explicit throttle ack and a
// usable retry-after, and honouring it must succeed.
func TestRateLimitSheds(t *testing.T) {
	s := startServer(t, Config{Shards: 1, RateLimit: 5, RateBurst: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	c, err := Dial(s.Addr().String(), "dev-r", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseAbort() //nolint:errcheck

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewClient(conn, "dev-r", 0, 0)
	var thr *ErrThrottled
	if !errors.As(err, &thr) {
		t.Fatalf("second conn: want ErrThrottled, got %v", err)
	}
	if thr.RetryAfter <= 0 || thr.RetryAfter > time.Second {
		t.Fatalf("retry-after = %v", thr.RetryAfter)
	}
	if got := s.counters.throttled.Load(); got != 1 {
		t.Fatalf("throttled counter = %d", got)
	}
	// Another device is not affected by dev-r's bucket.
	if c2, err := Dial(s.Addr().String(), "dev-other", 0, 5*time.Second); err != nil {
		t.Fatalf("other device throttled: %v", err)
	} else {
		c2.CloseAbort() //nolint:errcheck
	}
	// Honouring the retry-after gets dev-r admitted.
	time.Sleep(thr.RetryAfter)
	conn2, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c3, err := NewClient(conn2, "dev-r", 0, 0)
	if err != nil {
		t.Fatalf("post-retry conn: %v", err)
	}
	c3.CloseAbort() //nolint:errcheck
}

// TestDedupNonCompliantClient replays an already-accepted frame on the same
// connection: the server must decode it (the timestamp chain must stay
// intact), drop it, and count it — never feed it twice.
func TestDedupNonCompliantClient(t *testing.T) {
	s := startServer(t, Config{Shards: 1, QueueDepth: 8, BatchSize: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHello(conn, "dev-d", 0, 0); err != nil {
		t.Fatal(err)
	}
	enc := trace.NewRecordEncoder(0)
	recs := sampleRecords()
	var frames [][]byte
	for i := range recs {
		body, err := enc.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, appendFrame(nil, int64(i), body))
	}
	// 0, 1, 2, replay of 1, 3, FIN.
	for _, f := range [][]byte{frames[0], frames[1], frames[2], frames[1], frames[3]} {
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(appendFrame(nil, int64(len(recs)), []byte{finByte})); err != nil {
		t.Fatal(err)
	}

	// Drain the two acks (hello, FIN); FIN ack arrival means processing done.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	br := bufio.NewReader(conn)
	if seq, err := readAck(br); err != nil || seq != 0 {
		t.Fatalf("hello ack: %d %v", seq, err)
	}
	if seq, err := readAck(br); err != nil || seq != int64(len(recs)) {
		t.Fatalf("fin ack: %d %v", seq, err)
	}

	if got := s.counters.records.Load(); got != int64(len(recs)) {
		t.Fatalf("records = %d, want %d (duplicate was fed)", got, len(recs))
	}
	if got := s.counters.duplicates.Load(); got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
}
