package ingest

import (
	"testing"
	"time"
)

// schedule drains n delays from a fresh Backoff seeded for device.
func schedule(device string, n int) []time.Duration {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Rand: SessionRand(device)}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = b.Next()
	}
	return out
}

// TestBackoffDeterministic: a session's backoff schedule is a pure
// function of its device name — reproducible run to run — while distinct
// devices get decorrelated schedules. Regression test for the old
// behaviour where a nil Rand fell back to the global math/rand source,
// making every schedule depend on whatever else the process had drawn.
func TestBackoffDeterministic(t *testing.T) {
	a1 := schedule("u00", 8)
	a2 := schedule("u00", 8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same device, differing schedule at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
	b := schedule("u01", 8)
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatalf("devices u00 and u01 share an identical %d-step schedule", len(a1))
	}
}

// TestBackoffNilRandGetsPerInstanceSource: with no injected source the
// Backoff installs its own on first use instead of touching the global
// math/rand stream, and independent instances jitter independently.
func TestBackoffNilRandGetsPerInstanceSource(t *testing.T) {
	var b1, b2 Backoff
	d1, d2 := b1.Next(), b2.Next()
	if b1.Rand == nil || b2.Rand == nil {
		t.Fatal("Next did not install a per-instance source")
	}
	if b1.Rand == b2.Rand {
		t.Fatal("instances share a jitter source")
	}
	lo, hi := 25*time.Millisecond, 50*time.Millisecond
	for _, d := range []time.Duration{d1, d2} {
		if d < lo || d > hi {
			t.Errorf("first delay %v outside jitter envelope [%v, %v]", d, lo, hi)
		}
	}
}

// TestBackoffGrowthAndCap: the exponential shape and cap survive the
// jitter-source change.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Rand: SessionRand("dev")}
	prevMax := time.Duration(0)
	for i := 0; i < 10; i++ {
		d := b.Next()
		if d > 80*time.Millisecond {
			t.Fatalf("delay %v exceeds cap", d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < 40*time.Millisecond {
		t.Errorf("schedule never grew near the cap: max seen %v", prevMax)
	}
	b.Reset()
	if d := b.Next(); d > 10*time.Millisecond {
		t.Errorf("post-Reset delay %v above base", d)
	}
}
