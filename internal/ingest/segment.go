package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"netenergy/internal/obs"
	"netenergy/internal/trace"
)

// Segment store: with Config.SegmentDir set, every accepted record is
// also appended to a per-device METR-3 segment file, giving the node a
// queryable on-disk history (GET /query, cmd/tsq) alongside the live
// accumulators. Each shard owns one segmentStore confined to its worker
// goroutine — the device→shard mapping is stable, so no two shards ever
// touch the same device's files.
//
// Lifecycle: a device's segment opens lazily on its first accepted
// record, rolls to a new sequence-numbered file when it exceeds
// SegmentMaxBytes, and seals (writes the footer seek index) when the
// device retires or the server drains. In-progress segments have no
// footer yet; sync() cuts any buffered partial block so the query
// engine's streaming fallback can read the live tail.
//
// Persistence is best-effort by design: a write error disables the
// device's segment stream (counted, logged) rather than failing ingest,
// and records a crashed process re-accepts after its last checkpoint
// may appear in both an old and a new segment file. The accumulator
// path stays exactly-once; segments are at-least-once across crashes.

// segmentWriter is one device's open segment file.
type segmentWriter struct {
	f     *os.File
	w     *trace.ColumnWriter
	n     int64           // bytes written so far (roll trigger)
	last  trace.Timestamp // newest appended timestamp (drop gate)
	dirty bool            // records appended since the last sync/seal
}

// Write counts bytes through to the file, feeding the roll decision.
func (sw *segmentWriter) Write(p []byte) (int, error) {
	n, err := sw.f.Write(p)
	sw.n += int64(n)
	return n, err
}

// segmentStore is one shard's segment persistence state.
type segmentStore struct {
	dir      string
	maxBytes int64
	counters *counters

	open map[string]*segmentWriter
	seq  map[string]int  // next file sequence per sanitized device name
	bad  map[string]bool // devices whose persistence failed and is disabled
}

func newSegmentStore(dir string, maxBytes int64, seqs map[string]int, c *counters) *segmentStore {
	seq := make(map[string]int, len(seqs))
	for k, v := range seqs {
		seq[k] = v
	}
	return &segmentStore{
		dir:      dir,
		maxBytes: maxBytes,
		counters: c,
		open:     map[string]*segmentWriter{},
		seq:      seq,
		bad:      map[string]bool{},
	}
}

// seedSegmentSeqs scans dir once at startup so a restarted node continues
// each device's file numbering instead of overwriting sealed history.
func seedSegmentSeqs(dir string) (map[string]int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seqs := map[string]int{}
	for _, ent := range entries {
		name, ok := strings.CutSuffix(ent.Name(), segmentExt)
		if !ok {
			continue
		}
		i := strings.LastIndexByte(name, '-')
		if i < 0 {
			continue
		}
		n, err := strconv.Atoi(name[i+1:])
		if err != nil {
			continue
		}
		if n+1 > seqs[name[:i]] {
			seqs[name[:i]] = n + 1
		}
	}
	return seqs, nil
}

const segmentExt = ".metr3"

// appendBatch persists one accepted columnar batch.
func (st *segmentStore) appendBatch(device string, b *trace.RecordBatch) {
	var rec trace.Record
	for i := 0; i < b.Len(); i++ {
		b.Record(i, &rec)
		st.appendRecord(device, &rec)
	}
}

// appendRecord persists one accepted record. Records that would violate
// the container's timestamp monotonicity (a device clock that jumped
// backwards) are dropped from the segment — and counted — rather than
// poisoning the writer; the live accumulator still sees them.
func (st *segmentStore) appendRecord(device string, r *trace.Record) {
	if st.bad[device] {
		return
	}
	sw := st.open[device]
	if sw == nil {
		var err error
		if sw, err = st.openSegment(device, r.TS); err != nil {
			st.disable(device, err)
			return
		}
	}
	if sw.dirty && r.TS < sw.last {
		st.counters.segRecordsDropped.Add(1)
		return
	}
	if err := sw.w.Write(r); err != nil {
		st.disable(device, err)
		return
	}
	sw.last = r.TS
	sw.dirty = true
	st.counters.segRecords.Add(1)
	if st.maxBytes > 0 && sw.n >= st.maxBytes {
		st.seal(device)
	}
}

func (st *segmentStore) openSegment(device string, start trace.Timestamp) (*segmentWriter, error) {
	base := sanitizeSegmentName(device)
	seq := st.seq[base]
	st.seq[base] = seq + 1
	path := filepath.Join(st.dir, fmt.Sprintf("%s-%06d%s", base, seq, segmentExt))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	sw := &segmentWriter{f: f}
	if sw.w, err = trace.NewColumnWriter(sw, device, start); err != nil {
		f.Close()
		return nil, err
	}
	st.open[device] = sw
	return sw, nil
}

// seal finishes a device's open segment: footer index written, file
// closed. The next accepted record rolls to a new sequence number.
func (st *segmentStore) seal(device string) {
	sw := st.open[device]
	if sw == nil {
		return
	}
	delete(st.open, device)
	err := sw.w.Flush()
	if cerr := sw.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		st.disable(device, err)
		return
	}
	st.counters.segSealed.Add(1)
	st.counters.segBytes.Add(sw.n)
}

// sync makes every open segment's buffered records visible to readers by
// cutting a partial block (no footer — the file stays live). Called on
// the shard goroutine ahead of a query.
func (st *segmentStore) sync() error {
	var first error
	//repolint:ordered per-device Sync calls are independent; error capture keeps the first
	for device, sw := range st.open {
		if !sw.dirty {
			continue
		}
		if err := sw.w.Sync(); err != nil {
			st.disable(device, err)
			if first == nil {
				first = err
			}
			continue
		}
		sw.dirty = false
	}
	return first
}

// closeAll seals every open segment (drain path).
func (st *segmentStore) closeAll() {
	//repolint:ordered seal order across devices is irrelevant
	for device := range st.open {
		st.seal(device)
	}
}

// disable turns off persistence for one device after an I/O failure,
// leaving any sealed history readable.
func (st *segmentStore) disable(device string, err error) {
	if sw := st.open[device]; sw != nil {
		sw.f.Close()
		delete(st.open, device)
	}
	st.bad[device] = true
	st.counters.segErrors.Add(1)
	st.counters.events.Logf(obs.LevelError, "segment persistence disabled for %q: %v", device, err)
}

// sanitizeSegmentName maps an arbitrary wire device name to a safe file
// stem: alphanumerics, '.', '_' and '-' pass through (no leading '.'),
// everything else percent-encodes. The encoding is injective, so
// distinct devices never share a stem; absurdly long names fall back to
// a truncated prefix plus a hash of the full name.
func sanitizeSegmentName(device string) string {
	var sb strings.Builder
	for i := 0; i < len(device); i++ {
		c := device[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.' && i > 0:
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	s := sb.String()
	if s == "" || len(s) > 128 {
		if len(s) > 40 {
			s = s[:40]
		}
		return fmt.Sprintf("%s+%016x", s, hash64(device))
	}
	return s
}
