package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"netenergy/internal/synthgen"
)

func adminGet(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func adminPost(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Post(url, "", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.StatusCode
}

// TestAdminErrorPaths exercises the admin surface's failure branches:
// malformed and unknown /device queries, wrong-method and while-draining
// /checkpoint, and snapshotting during shutdown.
func TestAdminErrorPaths(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, Config{
		AdminAddr: "127.0.0.1:0", Shards: 2, QueueDepth: 8, BatchSize: 8,
		CheckpointDir: dir, CheckpointInterval: time.Hour, // manual-only
	})
	base := fmt.Sprintf("http://%s", s.AdminAddr())
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	streamTrace(t, s.Addr().String(), dt)

	// /device: missing id, unknown id, known id.
	if code := adminGet(t, base+"/device", nil); code != http.StatusBadRequest {
		t.Errorf("/device without id: %d, want 400", code)
	}
	if code := adminGet(t, base+"/device?id=no-such-device", nil); code != http.StatusNotFound {
		t.Errorf("/device unknown id: %d, want 404", code)
	}
	var ds DeviceStats
	if code := adminGet(t, base+"/device?id="+dt.Device, &ds); code != http.StatusOK {
		t.Errorf("/device known id: %d, want 200", code)
	} else if ds.Records != int64(len(dt.Records)) || ds.Conns != 1 {
		t.Errorf("/device stats = %+v, want %d records over 1 conn", ds, len(dt.Records))
	}

	// /checkpoint: GET refused, POST forces a save.
	if code := adminGet(t, base+"/checkpoint", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkpoint: %d, want 405", code)
	}
	var ck CheckpointStats
	if code := adminPost(t, base+"/checkpoint", &ck); code != http.StatusOK {
		t.Errorf("POST /checkpoint: %d, want 200", code)
	} else if ck.Generation < 1 || ck.Bytes <= 0 {
		t.Errorf("checkpoint after POST = %+v", ck)
	}

	// Simulate the drain window: checkpointing must refuse (the final
	// checkpoint belongs to Shutdown), but stats and headline snapshots
	// must keep working so operators can watch the drain.
	s.mu.Lock()
	s.drain = true
	s.mu.Unlock()
	if code := adminPost(t, base+"/checkpoint", nil); code != http.StatusServiceUnavailable {
		t.Errorf("POST /checkpoint while draining: %d, want 503", code)
	}
	var st Stats
	if code := adminGet(t, base+"/stats?devices=1", &st); code != http.StatusOK {
		t.Errorf("/stats while draining: %d, want 200", code)
	} else if st.Records != int64(len(dt.Records)) {
		t.Errorf("/stats records while draining = %d, want %d", st.Records, len(dt.Records))
	}
	var h LiveHeadline
	if code := adminGet(t, base+"/headline", &h); code != http.StatusOK {
		t.Errorf("/headline while draining: %d, want 200", code)
	} else if h.Records != int64(len(dt.Records)) || h.TotalEnergyJ <= 0 {
		t.Errorf("/headline while draining = %+v", h)
	}
	s.mu.Lock()
	s.drain = false
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdminCheckpointDisabled: with no checkpoint directory configured the
// manual trigger must refuse rather than pretend.
func TestAdminCheckpointDisabled(t *testing.T) {
	s := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	url := fmt.Sprintf("http://%s/checkpoint", s.AdminAddr())
	if code := adminPost(t, url, nil); code != http.StatusServiceUnavailable {
		t.Errorf("POST /checkpoint without durability: %d, want 503", code)
	}
}
