package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strconv"
	"testing"
	"time"

	"netenergy/internal/trace"
)

func sampleRecords() []trace.Record {
	return []trace.Record{
		{Type: trace.RecAppName, TS: 1000, App: 0, AppName: "com.example.app"},
		{Type: trace.RecProcState, TS: 1500, App: 0, State: trace.StateService},
		{Type: trace.RecPacket, TS: 2000, App: 0, Dir: trace.DirUp,
			Net: trace.NetCellular, State: trace.StateService,
			Payload: []byte{0x45, 0, 0, 20, 1, 2, 3, 4}},
		{Type: trace.RecScreen, TS: 3000, ScreenOn: true},
	}
}

// TestProtoRoundtrip drives the client encoder against the server-side
// frame reader and record decoder directly.
func TestProtoRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, "u07", 500, 42); err != nil {
		t.Fatal(err)
	}
	enc := trace.NewRecordEncoder(500)
	recs := sampleRecords()
	for i := range recs {
		body, err := enc.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(appendFrame(nil, int64(42+i), body))
	}
	buf.Write(appendFrame(nil, int64(42+len(recs)), []byte{finByte}))

	br := bufio.NewReader(&buf)
	device, start, lastSeq, err := readHello(br)
	if err != nil {
		t.Fatal(err)
	}
	if device != "u07" || start != 500 || lastSeq != 42 {
		t.Fatalf("hello = %q/%d/%d", device, start, lastSeq)
	}
	dec := trace.NewRecordDecoder(start)
	fr := newFrameReader(br)
	for i := range recs {
		seq, body, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != int64(42+i) {
			t.Fatalf("frame %d: seq = %d, want %d", i, seq, 42+i)
		}
		if isFin(body) {
			t.Fatalf("frame %d misread as FIN", i)
		}
		got, err := dec.Decode(body)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want := recs[i]
		if got.Type != want.Type || got.TS != want.TS || got.App != want.App ||
			got.State != want.State || got.ScreenOn != want.ScreenOn ||
			got.AppName != want.AppName || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("record %d: got %v want %v", i, got, want)
		}
	}
	seq, body, err := fr.next()
	if err != nil || !isFin(body) || seq != int64(42+len(recs)) {
		t.Fatalf("FIN frame: seq=%d body=%v err=%v", seq, body, err)
	}
	if _, _, err := fr.next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestHelloCRCDetected flips one bit anywhere in the hello — including
// inside the device identifier — and requires the reader to refuse it: a
// corrupted handshake must never register a phantom device.
func TestHelloCRCDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, "u07", 500, 42); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if dev, start, seq, err := readHello(bufio.NewReader(bytes.NewReader(good))); err != nil || dev != "u07" || start != 500 || seq != 42 {
		t.Fatalf("clean hello: %q/%d/%d %v", dev, start, seq, err)
	}
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[i] ^= 1 << bit
			if _, _, _, err := readHello(bufio.NewReader(bytes.NewReader(bad))); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", i, bit)
			}
		}
	}
	// Truncated hello (CRC trailer missing).
	if _, _, _, err := readHello(bufio.NewReader(bytes.NewReader(good[:len(good)-2]))); !errors.Is(err, ErrBadHello) {
		t.Fatalf("truncated hello: %v", err)
	}
}

// TestAckRoundtrip covers the three hello-ack statuses and a malformed ack.
func TestAckRoundtrip(t *testing.T) {
	roundtrip := func(status byte, arg uint64) (int64, error) {
		var buf bytes.Buffer
		if err := writeAck(&buf, status, arg); err != nil {
			t.Fatal(err)
		}
		return readAck(bufio.NewReader(&buf))
	}

	if seq, err := roundtrip(ackOK, 1234); err != nil || seq != 1234 {
		t.Fatalf("ok ack: %d %v", seq, err)
	}
	_, err := roundtrip(ackThrottled, 250)
	var thr *ErrThrottled
	if !errors.As(err, &thr) || thr.RetryAfter != 250*time.Millisecond {
		t.Fatalf("throttled ack: %v", err)
	}
	if _, err := roundtrip(ackDraining, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining ack: %v", err)
	}
	if _, err := roundtrip(0x7f, 0); !errors.Is(err, ErrBadAck) {
		t.Fatalf("unknown status: %v", err)
	}
	if _, err := readAck(bufio.NewReader(bytes.NewReader(nil))); !errors.Is(err, ErrBadAck) {
		t.Fatalf("empty ack: %v", err)
	}
}

// TestFrameCRCDetected corrupts one frame: the reader must flag it with
// ErrFrameCRC so the server severs the connection. Corrupting the seq
// varint (which v1's CRC did not cover) must also be detected.
func TestFrameCRCDetected(t *testing.T) {
	enc := trace.NewRecordEncoder(0)
	recs := sampleRecords()
	var frames [][]byte
	for i := range recs {
		body, err := enc.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, appendFrame(nil, int64(i), body))
	}

	for _, tc := range []struct {
		name string
		mut  func([][]byte)
	}{
		{"body byte", func(f [][]byte) { f[1][3] ^= 0xff }},
		{"seq varint", func(f [][]byte) { f[1][0] ^= 0x01 }},
		{"crc byte", func(f [][]byte) { f[1][len(f[1])-1] ^= 0xff }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mutated := make([][]byte, len(frames))
			for i := range frames {
				mutated[i] = bytes.Clone(frames[i])
			}
			tc.mut(mutated)
			var buf bytes.Buffer
			for _, f := range mutated {
				buf.Write(f)
			}
			fr := newFrameReader(bufio.NewReader(&buf))
			if _, _, err := fr.next(); err != nil {
				t.Fatalf("frame 0: %v", err)
			}
			if _, _, err := fr.next(); !errors.Is(err, ErrFrameCRC) {
				t.Fatalf("frame 1: want ErrFrameCRC, got %v", err)
			}
		})
	}
}

// TestFrameSizeLimit: a huge claimed length must fail fast, not allocate.
func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(0x00)                                   // seq 0
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // length uvarint ~2^34
	fr := newFrameReader(bufio.NewReader(&buf))
	if _, _, err := fr.next(); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}
}

// TestRingDistribution: every device maps to a valid shard, the mapping is
// stable, and no shard is starved on a realistic fleet.
func TestRingDistribution(t *testing.T) {
	const shards = 8
	r := newRing(shards)
	counts := make([]int, shards)
	for i := 0; i < 4096; i++ {
		dev := "device-" + string(rune('a'+i%26)) + "-" + strconv.Itoa(i)
		s := r.shard(dev)
		if s < 0 || s >= shards {
			t.Fatalf("shard out of range: %d", s)
		}
		if s2 := r.shard(dev); s2 != s {
			t.Fatalf("unstable mapping for %q: %d vs %d", dev, s, s2)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d starved", s)
		}
	}
}
