package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strconv"
	"testing"

	"netenergy/internal/trace"
)

func sampleRecords() []trace.Record {
	return []trace.Record{
		{Type: trace.RecAppName, TS: 1000, App: 0, AppName: "com.example.app"},
		{Type: trace.RecProcState, TS: 1500, App: 0, State: trace.StateService},
		{Type: trace.RecPacket, TS: 2000, App: 0, Dir: trace.DirUp,
			Net: trace.NetCellular, State: trace.StateService,
			Payload: []byte{0x45, 0, 0, 20, 1, 2, 3, 4}},
		{Type: trace.RecScreen, TS: 3000, ScreenOn: true},
	}
}

// TestProtoRoundtrip drives the client encoder against the server-side
// frame reader and record decoder directly.
func TestProtoRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, "u07", 500); err != nil {
		t.Fatal(err)
	}
	enc := trace.NewRecordEncoder(500)
	recs := sampleRecords()
	for i := range recs {
		body, err := enc.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(appendFrame(nil, body))
	}

	br := bufio.NewReader(&buf)
	device, start, err := readHello(br)
	if err != nil {
		t.Fatal(err)
	}
	if device != "u07" || start != 500 {
		t.Fatalf("hello = %q/%d", device, start)
	}
	dec := trace.NewRecordDecoder(start)
	fr := newFrameReader(br)
	for i := range recs {
		body, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := dec.Decode(body)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want := recs[i]
		if got.Type != want.Type || got.TS != want.TS || got.App != want.App ||
			got.State != want.State || got.ScreenOn != want.ScreenOn ||
			got.AppName != want.AppName || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("record %d: got %v want %v", i, got, want)
		}
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestFrameCRCRecoverable corrupts one frame body: the reader must flag
// exactly that frame and resume on the next.
func TestFrameCRCRecoverable(t *testing.T) {
	enc := trace.NewRecordEncoder(0)
	recs := sampleRecords()
	var buf bytes.Buffer
	var frames [][]byte
	for i := range recs {
		body, err := enc.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, appendFrame(nil, body))
	}
	// Corrupt a body byte of the second frame (not its length prefix).
	frames[1][2] ^= 0xff
	for _, f := range frames {
		buf.Write(f)
	}

	fr := newFrameReader(bufio.NewReader(&buf))
	if _, err := fr.next(); err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	if _, err := fr.next(); !errors.Is(err, ErrFrameCRC) {
		t.Fatalf("frame 1: want ErrFrameCRC, got %v", err)
	}
	if _, err := fr.next(); err != nil {
		t.Fatalf("frame 2 after CRC error: %v", err)
	}
	if _, err := fr.next(); err != nil {
		t.Fatalf("frame 3 after CRC error: %v", err)
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestFrameSizeLimit: a huge claimed length must fail fast, not allocate.
func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // uvarint ~2^34
	fr := newFrameReader(bufio.NewReader(&buf))
	if _, err := fr.next(); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}
}

// TestRingDistribution: every device maps to a valid shard, the mapping is
// stable, and no shard is starved on a realistic fleet.
func TestRingDistribution(t *testing.T) {
	const shards = 8
	r := newRing(shards)
	counts := make([]int, shards)
	for i := 0; i < 4096; i++ {
		dev := "device-" + string(rune('a'+i%26)) + "-" + strconv.Itoa(i)
		s := r.shard(dev)
		if s < 0 || s >= shards {
			t.Fatalf("shard out of range: %d", s)
		}
		if s2 := r.shard(dev); s2 != s {
			t.Fatalf("unstable mapping for %q: %d vs %d", dev, s, s2)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d starved", s)
		}
	}
}
