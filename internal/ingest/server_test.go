package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := NewServer(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func streamTrace(t *testing.T, addr string, dt *trace.DeviceTrace) {
	t.Helper()
	c, err := Dial(addr, dt.Device, dt.Start, 5*time.Second)
	if err != nil {
		t.Errorf("dial %s: %v", dt.Device, err)
		return
	}
	for i := range dt.Records {
		if err := c.Send(&dt.Records[i]); err != nil {
			t.Errorf("send %s: %v", dt.Device, err)
			break
		}
	}
	if err := c.Close(); err != nil {
		t.Errorf("close %s: %v", dt.Device, err)
	}
}

func batchOpts() energy.Options {
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	return opts
}

// TestServeFleetMatchesBatch is the acceptance check: a fleet streamed
// concurrently over TCP must yield the same headline as the batch pipeline
// over the same generated dataset.
func TestServeFleetMatchesBatch(t *testing.T) {
	cfg := synthgen.Small(4, 3)
	dts := synthgen.GenerateInMemory(cfg)

	s := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 4, QueueDepth: 16, BatchSize: 32})
	addr := s.Addr().String()

	var wg sync.WaitGroup
	var sent int64
	var mu sync.Mutex
	for _, dt := range dts {
		wg.Add(1)
		go func(dt *trace.DeviceTrace) {
			defer wg.Done()
			streamTrace(t, addr, dt)
			mu.Lock()
			sent += int64(len(dt.Records))
			mu.Unlock()
		}(dt)
	}
	wg.Wait()

	// Wait for the shards to drain what the handlers enqueued.
	deadline := time.Now().Add(10 * time.Second)
	for s.counters.records.Load() < sent && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	// Query the live headline over HTTP before shutdown.
	var live LiveHeadline
	resp, err := http.Get(fmt.Sprintf("http://%s/headline", s.AdminAddr()))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// No drops: every record sent was accepted.
	if got := s.counters.records.Load(); got != sent {
		t.Fatalf("records accepted = %d, sent = %d", got, sent)
	}
	if s.counters.crcErrors.Load() != 0 || s.counters.decodeErrors.Load() != 0 {
		t.Fatalf("unexpected errors: %+v", s.Stats(false))
	}

	// Batch reference over the identical dataset (KeepPackets on: the
	// first-minute figure walks the per-packet slice in batch mode).
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ComputeHeadline(devs)

	if d := math.Abs(final.Ledger.BackgroundFraction() - want.BackgroundFraction); d > 0.01*want.BackgroundFraction {
		t.Errorf("background fraction: ingest %v vs batch %v", final.Ledger.BackgroundFraction(), want.BackgroundFraction)
	}
	if d := math.Abs(final.Ledger.Total - want.TotalEnergyJ); d > 1e-6*(1+want.TotalEnergyJ) {
		t.Errorf("total energy: ingest %v vs batch %v", final.Ledger.Total, want.TotalEnergyJ)
	}
	if d := math.Abs(final.FirstMinuteFraction(0.8) - want.FirstMinute.Fraction); d > 1e-9 {
		t.Errorf("first minute: ingest %v vs batch %v", final.FirstMinuteFraction(0.8), want.FirstMinute.Fraction)
	}
	// The mid-stream HTTP headline was taken after all conns closed, so it
	// must already match (every stream finalised by then).
	if d := math.Abs(live.BackgroundFraction - want.BackgroundFraction); d > 0.01*want.BackgroundFraction {
		t.Errorf("live headline background fraction: %v vs batch %v", live.BackgroundFraction, want.BackgroundFraction)
	}
	if live.Records != sent {
		t.Errorf("live headline records = %d, sent %d", live.Records, sent)
	}
}

// TestGracefulDrain severs connections mid-stream via Shutdown and checks
// the drained headline equals a clean run over exactly the records the
// server accepted per device.
func TestGracefulDrain(t *testing.T) {
	cfg := synthgen.Small(3, 2)
	dts := synthgen.GenerateInMemory(cfg)

	s := startServer(t, Config{Shards: 2, QueueDepth: 8, BatchSize: 16})
	addr := s.Addr().String()

	// Stream slowly from each device and never close: the shutdown arrives
	// mid-stream.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, dt := range dts {
		wg.Add(1)
		go func(dt *trace.DeviceTrace) {
			defer wg.Done()
			c, err := Dial(addr, dt.Device, dt.Start, 5*time.Second)
			if err != nil {
				// The shutdown below can land before this device finishes
				// its handshake; an admission refusal is then expected, and
				// the cross-check still holds (0 records accepted).
				t.Logf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := range dt.Records {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.Send(&dt.Records[i]); err != nil {
					return // connection severed by shutdown
				}
				if i%64 == 0 {
					if err := c.Flush(); err != nil {
						return
					}
				}
			}
		}(dt)
	}

	// Let some traffic land, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for s.counters.records.Load() < 500 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if s.counters.records.Load() == 0 {
		t.Fatal("no records accepted before shutdown")
	}

	// Clean-run reference: feed exactly the accepted per-device prefixes.
	want := analysis.NewStreamResult("fleet")
	for _, dt := range dts {
		n := s.DeviceRecords(dt.Device)
		acc := analysis.NewStreamAccumulator(dt.Device, batchOpts())
		for i := int64(0); i < n; i++ {
			acc.Feed(&dt.Records[i])
		}
		want.Merge(acc.Finish())
	}

	if d := math.Abs(final.Ledger.Total - want.Ledger.Total); d > 1e-6*(1+want.Ledger.Total) {
		t.Errorf("drained total energy %v, clean run %v", final.Ledger.Total, want.Ledger.Total)
	}
	if final.Ledger.BackgroundFraction() != 0 || want.Ledger.BackgroundFraction() != 0 {
		df := math.Abs(final.Ledger.BackgroundFraction() - want.Ledger.BackgroundFraction())
		if df > 1e-9 {
			t.Errorf("drained bg fraction %v, clean run %v",
				final.Ledger.BackgroundFraction(), want.Ledger.BackgroundFraction())
		}
	}
	if final.OffBytes != want.OffBytes || final.OnBytes != want.OnBytes {
		t.Errorf("drained screen split %d/%d, clean run %d/%d",
			final.OffBytes, final.OnBytes, want.OffBytes, want.OnBytes)
	}
	// Snapshot after shutdown serves the drained final.
	if snap := s.Snapshot(); math.Abs(snap.Ledger.Total-final.Ledger.Total) > 1e-9 {
		t.Errorf("post-shutdown snapshot total %v != final %v", snap.Ledger.Total, final.Ledger.Total)
	}
}

// TestCRCSeversAndResumes sends a corrupted frame between good ones: the
// server must count it, sever the connection (the timestamp chain past the
// bad frame cannot be trusted), and hand the accepted prefix back as the
// resume point, so a reconnecting client retransmits the damaged record and
// nothing is lost.
func TestCRCSeversAndResumes(t *testing.T) {
	s := startServer(t, Config{Shards: 1, QueueDepth: 4, BatchSize: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHello(conn, "dev-x", 0, 0); err != nil {
		t.Fatal(err)
	}
	enc := trace.NewRecordEncoder(0)
	recs := sampleRecords()
	for i := range recs {
		body, err := enc.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		frame := appendFrame(nil, int64(i), body)
		if i == 1 {
			frame[len(frame)-1] ^= 0xff // corrupt the CRC
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	// The server severs at the corrupt frame: our next read sees EOF/reset.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	io.Copy(io.Discard, conn)                             //nolint:errcheck
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.counters.crcErrors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.counters.crcErrors.Load(); got != 1 {
		t.Fatalf("crc errors = %d, want 1", got)
	}
	if got := s.counters.severs.Load(); got != 1 {
		t.Fatalf("severs = %d, want 1", got)
	}
	// Only the frame before the corruption was accepted.
	for s.counters.records.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.counters.records.Load(); got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
	dev := s.devices.snapshot()["dev-x"]
	if dev.CRCErrors != 1 {
		t.Fatalf("per-device crc errors = %+v", dev)
	}

	// Reconnect: the handshake must point at the accepted prefix, and
	// retransmitting from there completes the stream.
	c, err := Dial(s.Addr().String(), "dev-x", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.ResumeSeq != 1 {
		t.Fatalf("resume seq = %d, want 1", c.ResumeSeq)
	}
	for i := int(c.ResumeSeq); i < len(recs); i++ {
		if err := c.Send(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("fin: %v", err)
	}
	if got := s.counters.records.Load(); got != int64(len(recs)) {
		t.Fatalf("records after resume = %d, want %d", got, len(recs))
	}
	if got := s.counters.resumes.Load(); got != 1 {
		t.Fatalf("resumes = %d, want 1", got)
	}
}
