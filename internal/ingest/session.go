package ingest

import (
	"errors"
	"fmt"
	"net"
	"time"

	"netenergy/internal/trace"
)

// maxRedirectHops caps the number of consecutive redirect acks a session
// follows before concluding the cluster's membership views disagree and
// falling back to walking its own ring preference order.
const maxRedirectHops = 8

// SessionConfig controls a resumable device session: the reconnect loop
// that delivers one trace to the server exactly once, across however many
// connections that takes.
type SessionConfig struct {
	// Addr is the server address. AddrFunc, when set, is consulted before
	// every connection attempt instead — the crash-recovery path, where a
	// restarted server may listen on a new port.
	Addr     string
	AddrFunc func() string

	// Nodes, when set, enables cluster routing: the session builds a
	// NodeRing over these stream addresses and dials the device's owner
	// first, walking the ring-successor preference order when a node is
	// unreachable — exactly the order in which ownership falls over when
	// the cluster declares that node dead. A redirect ack (a node whose
	// membership view disagrees with this ring) overrides the next attempt.
	// Takes precedence over Addr/AddrFunc.
	Nodes []string

	Device string
	Start  trace.Timestamp

	// ConnectTimeout bounds one TCP connect attempt (default 1s).
	ConnectTimeout time.Duration
	// Deadline bounds the whole session, zero meaning no limit. A session
	// that cannot finish within it returns an error with the delivery
	// state so far.
	Deadline time.Duration

	// Backoff paces reconnect attempts (zero value = defaults).
	Backoff Backoff

	// WrapConn, when set, wraps each new connection before the handshake —
	// the hook the chaos package uses to inject faults.
	WrapConn func(net.Conn) net.Conn

	// Pace, when set, returns how long to sleep before sending record i;
	// the session flushes buffered frames before any non-trivial sleep so
	// pacing does not hold records hostage in the write buffer.
	Pace func(i int) time.Duration
}

// SessionStats reports how delivery went.
type SessionStats struct {
	// Records is the unique record count acked by the server; Bytes is the
	// total frame bytes written, including retransmissions.
	Records int64
	Bytes   int64
	// Conns is the number of connections the session used (1 = no faults).
	Conns int
	// Resumed counts reconnects that found prior progress on the server.
	Resumed int
	// Retransmitted counts records sent more than once (the price of a
	// severed connection: everything after the server's last checkpointed
	// ack is replayed).
	Retransmitted int64
	// Throttled counts handshakes the server refused for rate limiting.
	Throttled int
	// Redirected counts handshakes answered with a redirect ack (the
	// device's owner moved, or the dialed node disagreed about ownership).
	Redirected int
}

// StreamTrace delivers recs as one device stream, reconnecting and resuming
// from the server's acknowledged sequence number until the server confirms
// the complete stream (FIN ack) or the deadline expires. It tolerates
// connection loss, server restarts, frame corruption (the server severs,
// the session resumes) and throttling.
func StreamTrace(cfg SessionConfig, recs []trace.Record) (SessionStats, error) {
	var st SessionStats
	addr := cfg.AddrFunc
	if addr == nil {
		addr = func() string { return cfg.Addr }
	}
	connectTimeout := cfg.ConnectTimeout
	if connectTimeout <= 0 {
		connectTimeout = time.Second
	}
	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = time.Now().Add(cfg.Deadline)
	}
	bo := cfg.Backoff
	if bo.Rand == nil {
		bo.Rand = SessionRand(cfg.Device)
	}

	// Cluster routing state. pref is the device's ring preference order:
	// owner first, then the nodes that inherit it on failover. pi is the
	// current candidate, sticky across reconnects (the node that last
	// accepted the stream is retried first; a dead node fails the dial and
	// advances). A redirect ack overrides exactly the next attempt, and a
	// chain of redirects longer than maxRedirectHops (disagreeing
	// membership views mid-churn) falls back to walking the ring.
	var pref []string
	pi := 0
	if len(cfg.Nodes) > 0 {
		pref = NewNodeRing(cfg.Nodes).Prefer(cfg.Device)
	}
	redirect := ""
	redirectHops := 0
	target := func() string {
		if redirect != "" {
			return redirect
		}
		if len(pref) > 0 {
			return pref[pi%len(pref)]
		}
		return addr()
	}
	advance := func() {
		if redirect != "" {
			redirect = "" // failed redirect target: fall back to the ring
			return
		}
		if len(pref) > 0 {
			pi++
		}
	}

	// sentHint is this side's belief of the server's accepted seq, offered
	// in the hello; the server's ack overrides it.
	var sentHint int64
	fail := func(cause error) (SessionStats, error) {
		return st, fmt.Errorf("ingest: session %s: %d/%d records acked over %d conns: %w",
			cfg.Device, sentHint, len(recs), st.Conns, cause)
	}
	sleep := func(d time.Duration) bool {
		if !deadline.IsZero() {
			left := time.Until(deadline)
			if left <= 0 {
				return false
			}
			if d > left {
				d = left
			}
		}
		time.Sleep(d)
		return true
	}

	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fail(errors.New("deadline exceeded"))
		}
		dialed := target()
		conn, err := net.DialTimeout("tcp", dialed, connectTimeout)
		if err != nil {
			advance()
			if !sleep(bo.Next()) {
				return fail(err)
			}
			continue
		}
		if cfg.WrapConn != nil {
			conn = cfg.WrapConn(conn)
		}
		c, err := NewClient(conn, cfg.Device, cfg.Start, sentHint)
		if err != nil {
			var thr *ErrThrottled
			var rd *ErrRedirect
			switch {
			case errors.As(err, &thr):
				st.Throttled++
				if !sleep(thr.RetryAfter) {
					return fail(err)
				}
			case errors.As(err, &rd):
				st.Redirected++
				redirectHops++
				if redirectHops > maxRedirectHops {
					// Membership views disagree (a redirect cycle during
					// churn): stop chasing and walk the ring instead.
					redirect = ""
					redirectHops = 0
					if len(pref) > 0 {
						pi++
					}
				} else {
					redirect = rd.Addr
				}
				if !sleep(bo.Next()) {
					return fail(err)
				}
			default:
				// Draining, handshake corruption, or a dead socket: back
				// off and retry; a restarting server will take the next
				// attempt.
				advance()
				if !sleep(bo.Next()) {
					return fail(err)
				}
			}
			continue
		}
		// Accepted: make this node the sticky first choice for reconnects
		// and forget any redirect chain that led here.
		redirect = ""
		redirectHops = 0
		for i, n := range pref {
			if n == dialed {
				pi = i
				break
			}
		}
		st.Conns++
		if c.ResumeSeq > int64(len(recs)) {
			c.CloseAbort() //nolint:errcheck
			return fail(fmt.Errorf("server resume seq %d beyond trace length %d", c.ResumeSeq, len(recs)))
		}
		if st.Conns > 1 {
			st.Resumed++
			st.Retransmitted += sentHint - c.ResumeSeq
			if st.Retransmitted < 0 {
				st.Retransmitted = 0
			}
		}
		bo.Reset()

		sendErr := func() error {
			for i := c.ResumeSeq; i < int64(len(recs)); i++ {
				if cfg.Pace != nil {
					if d := cfg.Pace(int(i)); d > 0 {
						if d > 5*time.Millisecond {
							if err := c.Flush(); err != nil {
								return err
							}
						}
						if !sleep(d) {
							return errors.New("deadline exceeded")
						}
					}
				}
				if err := c.Send(&recs[i]); err != nil {
					return err
				}
			}
			return nil
		}()
		st.Bytes += c.Bytes
		if sendErr == nil {
			if err := c.Close(); err == nil {
				st.Records = int64(len(recs))
				return st, nil
			}
			// FIN or its ack was lost; the server may or may not have
			// finalized. Reconnect — the handshake tells us, and re-sending
			// FIN to a finalized stream is idempotent.
			sentHint = c.Seq()
			continue
		}
		c.CloseAbort() //nolint:errcheck
		sentHint = c.Seq()
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fail(sendErr)
		}
		if !sleep(bo.Next()) {
			return fail(sendErr)
		}
	}
}
