package ingest

import (
	"sort"
	"strconv"
)

// NodeRing is a consistent-hash ring mapping device IDs onto an arbitrary
// set of named nodes. It is the device→node assignment function of the
// cluster tier, lifted from the per-process shard ring so that the client
// (session routing), the server (redirect decisions) and the aggregator
// (handoff targeting) all compute the same placement from the same member
// list. Placement depends only on the set of node names: adding or removing
// one node relocates only ~1/n of devices, and every holder of the same
// member list agrees on every assignment.
//
// A NodeRing is immutable after construction; membership changes are
// handled by building a new ring over the new live set.
type NodeRing struct {
	hashes []uint64
	owners []string
	nodes  []string // deduplicated, sorted member names
}

// vnodesPerNode smooths the distribution; shared with the shard ring.
const vnodesPerNode = 64

// NewNodeRing builds a ring over the given node names. Duplicates are
// ignored; the input order is irrelevant (names are sorted first, so two
// rings over the same set are identical). An empty ring is valid: Owner
// returns "".
func NewNodeRing(nodes []string) *NodeRing {
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &NodeRing{
		hashes: make([]uint64, 0, len(uniq)*vnodesPerNode),
		owners: make([]string, 0, len(uniq)*vnodesPerNode),
		nodes:  uniq,
	}
	type point struct {
		h uint64
		n string
	}
	pts := make([]point, 0, len(uniq)*vnodesPerNode)
	for _, n := range uniq {
		for v := 0; v < vnodesPerNode; v++ {
			pts = append(pts, point{hash64(n + "-" + strconv.Itoa(v)), n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].n < pts[j].n // deterministic on (vanishingly rare) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.n)
	}
	return r
}

// Owner returns the node owning device, or "" on an empty ring.
func (r *NodeRing) Owner(device string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	i := r.search(device)
	return r.owners[i]
}

// Prefer returns every node in ring-successor order starting from the
// device's owner, each exactly once: the client-side failover order. If the
// owner is unreachable the next entry is exactly the node that inherits the
// device when the owner is declared dead, so walking this list converges
// with the server-side view.
func (r *NodeRing) Prefer(device string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i, n := r.search(device), 0; n < len(r.hashes) && len(out) < len(r.nodes); n++ {
		owner := r.owners[(i+n)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// Nodes returns the deduplicated, sorted member names behind the ring.
func (r *NodeRing) Nodes() []string { return r.nodes }

// search returns the index of the first ring point at or clockwise after
// the device's hash.
func (r *NodeRing) search(device string) int {
	h := hash64(device)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}
