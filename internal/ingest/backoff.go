package ingest

import (
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"
)

// Backoff produces capped exponential delays with jitter for reconnect
// loops. The zero value is usable (defaults below); not concurrency-safe.
//
// The jitter matters in a fleet: after a server restart every client
// reconnects at once, and synchronized retries re-create the thundering
// herd on every subsequent attempt. Multiplying each delay by a random
// factor in [0.5, 1.0) decorrelates them within a couple of rounds.
type Backoff struct {
	// Base is the first delay (default 50ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// Rand supplies jitter; nil lazily installs a per-instance seeded
	// source on first use (never the global math/rand source, whose
	// process-wide stream couples every session's jitter and defeats
	// reproducible schedules). Sessions seed it per device via
	// SessionRand; tests inject their own for determinism.
	Rand *rand.Rand

	attempt int
}

const (
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

// backoffInstances distinguishes the per-instance fallback seeds so that
// zero-value Backoffs created back-to-back still jitter independently.
var backoffInstances atomic.Uint64

// SessionRand returns a jitter source seeded from the device name
// (FNV-1a), giving every device session a stable, reproducible backoff
// schedule that is decorrelated from every other device's.
func SessionRand(device string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(device))
	return rand.New(rand.NewSource(int64(h.Sum64()))) //nolint:gosec
}

// Next returns the delay to sleep before the upcoming attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base << b.attempt
	if d > max || d < base { // d < base catches shift overflow
		d = max
	} else {
		b.attempt++
	}
	if b.Rand == nil {
		seed := backoffInstances.Add(1) * 0x9e3779b97f4a7c15
		b.Rand = rand.New(rand.NewSource(int64(seed))) //nolint:gosec
	}
	return time.Duration(float64(d) * (0.5 + b.Rand.Float64()/2))
}

// Reset restarts the schedule after a successful attempt.
func (b *Backoff) Reset() { b.attempt = 0 }
