package ingest

import (
	"math/rand"
	"time"
)

// Backoff produces capped exponential delays with jitter for reconnect
// loops. The zero value is usable (defaults below); not concurrency-safe.
//
// The jitter matters in a fleet: after a server restart every client
// reconnects at once, and synchronized retries re-create the thundering
// herd on every subsequent attempt. Multiplying each delay by a random
// factor in [0.5, 1.0) decorrelates them within a couple of rounds.
type Backoff struct {
	// Base is the first delay (default 50ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// Rand supplies jitter; nil uses the global source. Tests inject a
	// seeded source for determinism.
	Rand *rand.Rand

	attempt int
}

const (
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

// Next returns the delay to sleep before the upcoming attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base << b.attempt
	if d > max || d < base { // d < base catches shift overflow
		d = max
	} else {
		b.attempt++
	}
	var f float64
	if b.Rand != nil {
		f = b.Rand.Float64()
	} else {
		f = rand.Float64()
	}
	return time.Duration(float64(d) * (0.5 + f/2))
}

// Reset restarts the schedule after a successful attempt.
func (b *Backoff) Reset() { b.attempt = 0 }
