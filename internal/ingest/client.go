package ingest

import (
	"bufio"
	"io"
	"net"
	"time"

	"netenergy/internal/trace"
)

// Client streams one device's records to an ingest server. It is the
// device-side half of the wire protocol, used by cmd/fleetsim and tests.
// Not safe for concurrent use.
type Client struct {
	conn  io.WriteCloser
	bw    *bufio.Writer
	enc   *trace.RecordEncoder
	frame []byte

	// Records and Bytes count what has been handed to Send: the
	// "records sent" side of the drop accounting.
	Records int64
	Bytes   int64
}

// Dial connects to an ingest server and performs the hello for the given
// device stream. It retries the TCP connect until timeout elapses, so a
// load generator can start before the server finishes binding.
func Dial(addr, device string, start trace.Timestamp, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return NewClient(conn, device, start)
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// NewClient writes the hello on an established connection and returns the
// Client. The connection is owned by the Client from here on.
func NewClient(conn io.WriteCloser, device string, start trace.Timestamp) (*Client, error) {
	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := writeHello(bw, device, start); err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn, bw: bw, enc: trace.NewRecordEncoder(start)}, nil
}

// Send frames and buffers one record.
func (c *Client) Send(r *trace.Record) error {
	body, err := c.enc.Encode(r)
	if err != nil {
		return err
	}
	c.frame = appendFrame(c.frame[:0], body)
	if _, err := c.bw.Write(c.frame); err != nil {
		return err
	}
	c.Records++
	c.Bytes += int64(len(c.frame))
	return nil
}

// Flush pushes buffered frames to the connection.
func (c *Client) Flush() error { return c.bw.Flush() }

// Close flushes and closes the connection; the server finalises the device
// stream (radio tail, idle baseline) when it sees the clean end of stream.
func (c *Client) Close() error {
	ferr := c.bw.Flush()
	cerr := c.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
