package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net"
	"time"

	"netenergy/internal/trace"
)

// defaultMaxBatch is how many records a Client packs into one batch frame
// before emitting it. Large enough to amortize the frame header, CRC and
// per-frame decode work; small enough that a paced device's partial batch
// (flushed before every sleep) still reflects real-time delivery.
const defaultMaxBatch = 64

// maxBatchBytes flushes a pending batch early when its encoded records
// grow large (pathological payloads), keeping batch frames well under
// MaxFrame.
const maxBatchBytes = 256 << 10

// ackTimeout bounds how long a client waits for the server's handshake or
// FIN acknowledgement before declaring the connection dead.
const ackTimeout = 30 * time.Second

// Client streams one device's records to an ingest server over a single
// connection. It is the device-side half of the wire protocol, used by
// cmd/fleetsim and tests. Not safe for concurrent use.
//
// A Client is one connection, not one session: when the connection dies the
// Client is dead, and the caller reconnects and resumes from the server's
// acknowledged sequence number. Session (session.go) wraps that loop.
type Client struct {
	conn  net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	enc   *trace.RecordEncoder
	frame []byte
	seq   int64

	// Batch assembly: Send accumulates length-prefixed record bodies in
	// pending and emits one batch frame (body 0x06 count records...) per
	// maxBatch records, amortizing the frame header, CRC and buffer write.
	// Flush and Close emit any partial batch first, so no record is ever
	// held back across a flush boundary.
	pending      []byte
	body         []byte
	crcb         [4]byte
	pendingCount int
	pendingSeq   int64
	maxBatch     int

	// ResumeSeq is the sequence number the server acknowledged at the
	// handshake: the seq of the first record it expects on this connection.
	// On a fresh stream it is 0; after a reconnect it tells the caller how
	// far the server really got, which may be behind what was written.
	ResumeSeq int64

	// Records and Bytes count what has been handed to Send on this
	// connection (including retransmitted records).
	Records int64
	Bytes   int64
}

// Dial connects to an ingest server and performs the handshake for the
// given device stream. It retries the TCP connect with jittered exponential
// backoff until timeout elapses, so a load generator can start before the
// server finishes binding. Handshake rejections (ErrThrottled, ErrDraining)
// are returned immediately — the caller owns that retry policy.
func Dial(addr, device string, start trace.Timestamp, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	bo := Backoff{Rand: SessionRand(device)}
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return NewClient(conn, device, start, 0)
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(bo.Next())
	}
}

// NewClient performs the hello/ack handshake on an established connection
// and returns the Client. lastSeq is the client's belief of how many
// records the server has accepted (a hint; the server's ack is
// authoritative and lands in ResumeSeq). The connection is owned by the
// Client from here on and is closed on handshake failure.
func NewClient(conn net.Conn, device string, start trace.Timestamp, lastSeq int64) (*Client, error) {
	bw := bufio.NewWriterSize(conn, 1<<16)
	br := bufio.NewReaderSize(conn, 512)
	if err := writeHello(bw, device, start, lastSeq); err != nil {
		conn.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(ackTimeout)) //nolint:errcheck
	resume, err := readAck(br)
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{
		conn: conn, bw: bw, br: br,
		enc:       trace.NewRecordEncoder(start),
		seq:       resume,
		ResumeSeq: resume,
		maxBatch:  defaultMaxBatch,
	}, nil
}

// Seq returns the sequence number the next Send will carry.
func (c *Client) Seq() int64 { return c.seq }

// Send encodes one record into the pending batch, emitting a batch frame
// once maxBatch records have accumulated. The record is not on the wire
// (or even in the bufio buffer) until the batch is emitted; Flush and
// Close always emit the partial batch first.
func (c *Client) Send(r *trace.Record) error {
	body, err := c.enc.Encode(r)
	if err != nil {
		return err
	}
	if c.pendingCount == 0 {
		c.pendingSeq = c.seq
	}
	c.pending = binary.AppendUvarint(c.pending, uint64(len(body)))
	c.pending = append(c.pending, body...)
	c.pendingCount++
	c.seq++
	c.Records++
	if c.pendingCount >= c.maxBatch || len(c.pending) >= maxBatchBytes {
		return c.emitBatch()
	}
	return nil
}

// emitBatch frames the pending records as one batch frame and streams it
// head, records, CRC straight into the write buffer — the record bytes are
// copied once (into bufio), not assembled through intermediate buffers.
// The frame's seq names the first record; record j in the body carries
// pendingSeq+j.
func (c *Client) emitBatch() error {
	if c.pendingCount == 0 {
		return nil
	}
	bodyLen := 1 + uvarintLen(uint64(c.pendingCount)) + len(c.pending)
	c.body = c.body[:0]
	c.body = binary.AppendUvarint(c.body, uint64(c.pendingSeq))
	c.body = binary.AppendUvarint(c.body, uint64(bodyLen))
	c.body = append(c.body, batchByte)
	c.body = binary.AppendUvarint(c.body, uint64(c.pendingCount))
	crc := crc32.ChecksumIEEE(c.body)
	crc = crc32.Update(crc, crc32.IEEETable, c.pending)
	if _, err := c.bw.Write(c.body); err != nil {
		return err
	}
	if _, err := c.bw.Write(c.pending); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(c.crcb[:], crc)
	if _, err := c.bw.Write(c.crcb[:]); err != nil {
		return err
	}
	c.Bytes += int64(len(c.body) + len(c.pending) + 4)
	c.pending = c.pending[:0]
	c.pendingCount = 0
	return nil
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Flush emits the partial batch and pushes buffered frames to the
// connection.
func (c *Client) Flush() error {
	if err := c.emitBatch(); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Close ends the stream cleanly: it sends the FIN frame, waits for the
// server's acknowledgement that every record (and the finalization) has
// been applied, and closes the connection. A nil return therefore means
// server-acknowledged delivery of the whole stream, not merely "bytes
// written to a socket".
func (c *Client) Close() error {
	if err := c.emitBatch(); err != nil {
		c.conn.Close()
		return err
	}
	c.frame = appendFrame(c.frame[:0], c.seq, []byte{finByte})
	if _, err := c.bw.Write(c.frame); err != nil {
		c.conn.Close()
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.conn.Close()
		return err
	}
	c.conn.SetReadDeadline(time.Now().Add(ackTimeout)) //nolint:errcheck
	final, err := readAck(c.br)
	cerr := c.conn.Close()
	if err != nil {
		return fmt.Errorf("ingest: fin ack: %w", err)
	}
	if final != c.seq {
		return fmt.Errorf("ingest: fin ack seq %d, want %d", final, c.seq)
	}
	return cerr
}

// CloseAbort drops the connection without a FIN: the server keeps the
// device stream live so a later connection can resume it.
func (c *Client) CloseAbort() error { return c.conn.Close() }
