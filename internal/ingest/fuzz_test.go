package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"netenergy/internal/trace"
)

// FuzzFrameDecoder feeds arbitrary bytes to the server-side frame reader
// and record decoder: malformed lengths, truncated frames and bad CRCs
// must yield clean errors — never a panic or an allocation beyond the
// frame cap.
func FuzzFrameDecoder(f *testing.F) {
	// Seed: a valid hello plus a few well-formed frames and a FIN.
	var buf bytes.Buffer
	writeHello(&buf, "dev", 1000, 0) //nolint:errcheck
	enc := trace.NewRecordEncoder(1000)
	seq := int64(0)
	for _, r := range []trace.Record{
		{Type: trace.RecAppName, TS: 1000, App: 0, AppName: "com.a"},
		{Type: trace.RecPacket, TS: 2000, App: 0, Dir: trace.DirUp,
			Net: trace.NetCellular, State: trace.StateService, Payload: []byte{0x45, 0, 0, 20}},
		{Type: trace.RecScreen, TS: 3000, ScreenOn: true},
	} {
		body, _ := enc.Encode(&r)
		buf.Write(appendFrame(nil, seq, body))
		seq++
	}
	buf.Write(appendFrame(nil, seq, []byte{finByte}))
	f.Add(buf.Bytes())
	f.Add([]byte("FLTS2\n"))
	f.Add([]byte("FLTS1\n")) // old protocol version: must be a clean hello error
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		_, start, lastSeq, err := readHello(br)
		if err != nil {
			return
		}
		if lastSeq < 0 {
			t.Fatalf("negative lastSeq from hello: %d", lastSeq)
		}
		dec := trace.NewRecordDecoder(start)
		fr := newFrameReader(br)
		for i := 0; i < 10000; i++ {
			_, body, err := fr.next()
			switch {
			case err == nil:
			case errors.Is(err, io.EOF),
				errors.Is(err, ErrFrameCRC),
				errors.Is(err, ErrFrameTruncated),
				errors.Is(err, ErrFrameTooBig):
				// All of these sever the connection in the server.
				return
			default:
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(body) > MaxFrame {
				t.Fatalf("oversized frame body accepted: %d", len(body))
			}
			if isFin(body) {
				return
			}
			rec, err := dec.Decode(body)
			if err != nil {
				// A decode error severs the connection in the server.
				return
			}
			if rec.Type == trace.RecPacket && len(rec.Payload) > MaxFrame {
				t.Fatalf("oversized payload decoded: %d", len(rec.Payload))
			}
		}
	})
}
