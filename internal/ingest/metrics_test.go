package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"netenergy/internal/obs"
	"netenergy/internal/synthgen"
)

// scrapeMetrics fetches and parses the Prometheus exposition.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return m
}

// TestMetricsEndpointReconciles streams a fleet concurrently, then checks the
// scraped Prometheus exposition against both the JSON /stats document and the
// ground truth of what was sent — the same totals through two independent
// render paths must agree exactly.
func TestMetricsEndpointReconciles(t *testing.T) {
	s := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 4, QueueDepth: 32, BatchSize: 16})
	base := fmt.Sprintf("http://%s", s.AdminAddr())

	fleet := synthgen.GenerateInMemory(synthgen.Small(6, 3))
	var want int64
	var wg sync.WaitGroup
	for _, dt := range fleet {
		want += int64(len(dt.Records))
		wg.Add(1)
		go func() {
			defer wg.Done()
			streamTrace(t, s.Addr().String(), dt)
		}()
	}
	// Scrape while the fleet streams: the exposition must stay well-formed
	// under concurrent observation (this is the -race half of the test).
	for i := 0; i < 5; i++ {
		scrapeMetrics(t, base)
	}
	wg.Wait()

	m := scrapeMetrics(t, base)
	st := s.Stats(false)
	if got := int64(m["ingest_records_total"]); got != want || got != st.Records {
		t.Errorf("records: exposition %d, stats %d, sent %d", got, st.Records, want)
	}
	if got := int64(m["ingest_conns_total"]); got != int64(len(fleet)) {
		t.Errorf("conns_total = %d, want %d", got, len(fleet))
	}
	if got := int64(m["ingest_devices"]); got != int64(len(fleet)) {
		t.Errorf("devices = %d, want %d", got, len(fleet))
	}
	if got := int64(m["ingest_bytes_total"]); got != st.Bytes {
		t.Errorf("bytes: exposition %d, stats %d", got, st.Bytes)
	}
	if m["ingest_uptime_seconds"] <= 0 {
		t.Error("uptime missing from exposition")
	}
	// Hot-path histograms must have fired.
	if got := m[`ingest_frame_decode_seconds_bucket{le="+Inf"}`]; int64(got) != st.Frames-int64(len(fleet)) {
		// Every frame except the FINs is decoded once.
		t.Errorf("frame decode count = %v, want %d", got, st.Frames-int64(len(fleet)))
	}
	if m[`ingest_apply_latency_seconds_bucket{le="+Inf"}`] <= 0 {
		t.Error("apply latency histogram never observed")
	}
	if sum := m["ingest_batch_records_sum"]; int64(sum) != want {
		t.Errorf("batch records sum = %v, want %d (every accepted record in one batch)", sum, want)
	}
	// Per-shard queue gauges exist for every shard.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf(`ingest_shard_queue_depth{shard="%d"}`, i)
		if _, ok := m[key]; !ok {
			t.Errorf("missing %s", key)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestEventsEndpoint checks the /events JSON document: population, the
// ?level= filter, the ?n= trim, and rejection of a malformed n.
func TestEventsEndpoint(t *testing.T) {
	s := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1})
	base := fmt.Sprintf("http://%s", s.AdminAddr())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	s.Events().Logf(obs.LevelInfo, "synthetic info")
	s.Events().Logf(obs.LevelWarn, "synthetic warn")
	s.Events().Logf(obs.LevelError, "synthetic error")

	var doc struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if code := adminGet(t, base+"/events", &doc); code != http.StatusOK {
		t.Fatalf("GET /events: %d", code)
	}
	if doc.Total != 3 || len(doc.Events) != 3 {
		t.Fatalf("events doc = total %d, %d events; want 3/3", doc.Total, len(doc.Events))
	}
	if doc.Events[2].Msg != "synthetic error" || doc.Events[2].Level != obs.LevelError {
		t.Errorf("newest event = %+v", doc.Events[2])
	}

	doc.Events = nil
	if code := adminGet(t, base+"/events?level=warn&n=10", &doc); code != http.StatusOK {
		t.Fatalf("GET /events?level=warn: %d", code)
	}
	if len(doc.Events) != 2 {
		t.Errorf("warn+ events = %d, want 2", len(doc.Events))
	}
	for _, ev := range doc.Events {
		if ev.Level < obs.LevelWarn {
			t.Errorf("level filter leaked %+v", ev)
		}
	}

	doc.Events = nil
	if code := adminGet(t, base+"/events?n=1", &doc); code != http.StatusOK || len(doc.Events) != 1 {
		t.Errorf("GET /events?n=1: code %d, %d events", code, len(doc.Events))
	}
	if code := adminGet(t, base+"/events?n=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("GET /events?n=bogus: %d, want 400", code)
	}

	// Level serializes as a string in the JSON document.
	raw, _ := json.Marshal(obs.Event{Level: obs.LevelWarn, Msg: "x"})
	if want := `"level":"warn"`; !jsonContains(string(raw), want) {
		t.Errorf("event JSON %s missing %s", raw, want)
	}
}

func jsonContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPprofGating: /debug/pprof/ must 404 by default and serve when enabled.
func TestPprofGating(t *testing.T) {
	off := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1})
	if code := adminGet(t, fmt.Sprintf("http://%s/debug/pprof/", off.AdminAddr()), nil); code != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: %d, want 404", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	off.Shutdown(ctx) //nolint:errcheck

	on := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1, EnablePprof: true})
	if code := adminGet(t, fmt.Sprintf("http://%s/debug/pprof/", on.AdminAddr()), nil); code != http.StatusOK {
		t.Errorf("pprof with EnablePprof: %d, want 200", code)
	}
	on.Shutdown(ctx) //nolint:errcheck
}
