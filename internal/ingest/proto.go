// Package ingest implements the live fleet-ingest subsystem: a TCP server
// (cmd/ingestd) that accepts streams of METR records from many concurrent
// device connections, routes each device through a sharded worker pool, and
// feeds the bounded-memory analysis accumulators incrementally so the
// paper's headline statistics are queryable in real time over an HTTP admin
// endpoint. cmd/fleetsim is the matching load generator.
//
// Wire protocol (one TCP connection per device stream):
//
//	hello := "FLTS1\n" deviceLen:uvarint device:bytes start:varint(µs)
//	frame := bodyLen:uvarint body:bytes crc:uint32le
//	body  := type:byte record-body            (trace.RecordEncoder)
//
// The frame body is byte-identical to the CRC-covered region of a METR file
// record, and record timestamps are delta-encoded per connection exactly as
// in a METR file — a device stream is a METR trace re-framed for the wire.
// The explicit length prefix is what lets the server drop an individual
// CRC-corrupted frame and keep the connection, where a file reader has to
// abort: framing survives body corruption, only a corrupted length prefix
// kills the connection.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"

	"netenergy/internal/trace"
)

// Protocol errors.
var (
	// ErrBadHello means the connection did not start with a valid hello.
	ErrBadHello = errors.New("ingest: bad hello")
	// ErrFrameTooBig means a frame declared a body larger than MaxFrame;
	// the length prefix cannot be trusted, so the connection is fatal.
	ErrFrameTooBig = errors.New("ingest: frame exceeds size limit")
	// ErrFrameCRC means one frame's CRC check failed. The stream remains
	// framed; the caller counts the error and continues.
	ErrFrameCRC = errors.New("ingest: frame crc mismatch")
	// ErrFrameTruncated means the stream ended inside a frame.
	ErrFrameTruncated = errors.New("ingest: truncated frame")
)

var helloMagic = []byte("FLTS1\n")

const (
	// MaxFrame caps a frame body; matches the METR file record cap.
	MaxFrame = 1 << 20
	// maxDeviceID caps the hello's device-identifier length.
	maxDeviceID = 4096
)

// writeHello writes the connection preamble.
func writeHello(w io.Writer, device string, start trace.Timestamp) error {
	b := append([]byte(nil), helloMagic...)
	b = binary.AppendUvarint(b, uint64(len(device)))
	b = append(b, device...)
	b = binary.AppendVarint(b, int64(start))
	_, err := w.Write(b)
	return err
}

// readHello parses the connection preamble.
func readHello(r *bufio.Reader) (device string, start trace.Timestamp, err error) {
	var m [6]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return "", 0, ErrBadHello
	}
	for i := range m {
		if m[i] != helloMagic[i] {
			return "", 0, ErrBadHello
		}
	}
	dlen, err := binary.ReadUvarint(r)
	if err != nil || dlen == 0 || dlen > maxDeviceID {
		return "", 0, ErrBadHello
	}
	dev := make([]byte, dlen)
	if _, err := io.ReadFull(r, dev); err != nil {
		return "", 0, ErrBadHello
	}
	s, err := binary.ReadVarint(r)
	if err != nil {
		return "", 0, ErrBadHello
	}
	return string(dev), trace.Timestamp(s), nil
}

// appendFrame appends one framed body (length prefix, body, CRC) to dst.
func appendFrame(dst, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(body))
	return append(dst, crcb[:]...)
}

// frameReader reads frames from a buffered stream, reusing one body buffer.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(r *bufio.Reader) *frameReader {
	return &frameReader{r: r, buf: make([]byte, 0, 2048)}
}

// next returns the next frame body, valid until the following call. A clean
// end of stream is io.EOF. ErrFrameCRC is recoverable (the frame was fully
// consumed); every other error is fatal for the connection. The body buffer
// grows to the actual bytes read, never to an attacker-claimed length
// beyond MaxFrame.
func (f *frameReader) next() ([]byte, error) {
	blen, err := binary.ReadUvarint(f.r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrFrameTruncated
	}
	if blen > MaxFrame {
		return nil, ErrFrameTooBig
	}
	if cap(f.buf) < int(blen) {
		f.buf = make([]byte, blen)
	}
	body := f.buf[:blen]
	if _, err := io.ReadFull(f.r, body); err != nil {
		return nil, ErrFrameTruncated
	}
	var crcb [4]byte
	if _, err := io.ReadFull(f.r, crcb[:]); err != nil {
		return nil, ErrFrameTruncated
	}
	if binary.LittleEndian.Uint32(crcb[:]) != crc32.ChecksumIEEE(body) {
		return nil, ErrFrameCRC
	}
	return body, nil
}
