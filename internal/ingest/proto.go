// Package ingest implements the live fleet-ingest subsystem: a TCP server
// (cmd/ingestd) that accepts streams of METR records from many concurrent
// device connections, routes each device through a sharded worker pool, and
// feeds the bounded-memory analysis accumulators incrementally so the
// paper's headline statistics are queryable in real time over an HTTP admin
// endpoint. cmd/fleetsim is the matching load generator.
//
// Wire protocol v2 (one TCP connection per device stream), designed around
// fault tolerance: every record has an explicit per-device sequence number,
// the server acknowledges a resume point at connection setup, and a failed
// connection is resumed — not restarted — so crashes, drops and corruption
// cost retransmission, never data loss or double counting.
//
//	hello    := "FLTS2\n" deviceLen:uvarint device:bytes start:varint(µs)
//	            lastSeq:uvarint crc:uint32le
//	            crc covers everything from the magic through lastSeq: a bit
//	            flip in the handshake must be refused, not register a
//	            phantom device whose records double-count in the fleet
//	helloAck := status:byte arg:uvarint
//	            status 0 (ok):        arg = resumeSeq, the seq of the first
//	                                  record the server expects on this conn
//	            status 1 (throttled): arg = retry-after in milliseconds
//	            status 2 (draining):  arg = 0; server is shutting down
//	            status 3 (redirect):  arg = addrLen, followed by addr bytes —
//	                                  another cluster node owns this device;
//	                                  reconnect there (cluster mode only)
//	frame    := seq:uvarint bodyLen:uvarint body:bytes crc:uint32le
//	            crc covers the seq and bodyLen varints and the body
//	body     := type:byte record-body     (trace.RecordEncoder), or
//	            0x06 count:uvarint (recLen:uvarint record)* — a batch of
//	            count consecutive records (each encoded exactly like a
//	            single-record body, the timestamp delta chain running
//	            through them), with the frame seq naming the first record;
//	            record j carries seq+j. One length prefix, one CRC and one
//	            syscall amortize over the whole batch, which is what lifts
//	            ingest from ~1M to multi-M records/s. Or the
//	            single byte 0x00: end-of-stream (FIN) — the server finalizes
//	            the device stream and acks with status 0 / final seq
//
// The frame body is byte-identical to the CRC-covered region of a METR file
// record, and record timestamps are delta-encoded per connection exactly as
// in a METR file — a device stream is a METR trace re-framed for the wire.
//
// A CRC or record-decode failure severs the connection: the timestamp delta
// chain is broken past the bad frame, so the only sound recovery is for the
// client to reconnect and resume from the server's acknowledged sequence
// number, which retransmits the damaged record. (v1 kept the connection and
// skipped the frame, silently shifting every later timestamp by the lost
// delta — recoverability now comes from resume, not from tolerating gaps.)
// Sequence numbers make replay after reconnect idempotent: the shard that
// owns the device drops any record below its per-device high-water mark.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"netenergy/internal/trace"
)

// Protocol errors.
var (
	// ErrBadHello means the connection did not start with a valid hello.
	ErrBadHello = errors.New("ingest: bad hello")
	// ErrFrameTooBig means a frame declared a body larger than MaxFrame;
	// the length prefix cannot be trusted, so the connection is fatal.
	ErrFrameTooBig = errors.New("ingest: frame exceeds size limit")
	// ErrFrameCRC means a frame's CRC check failed. The record inside is
	// lost and the timestamp chain with it: the connection must be severed
	// and the client resumes from the server's last acknowledged sequence.
	ErrFrameCRC = errors.New("ingest: frame crc mismatch")
	// ErrFrameTruncated means the stream ended inside a frame.
	ErrFrameTruncated = errors.New("ingest: truncated frame")
	// ErrBadAck means the server's hello acknowledgement was malformed.
	ErrBadAck = errors.New("ingest: bad hello ack")
	// ErrDraining is returned to a client whose connection was refused
	// because the server is shutting down.
	ErrDraining = errors.New("ingest: server draining")
)

// ErrThrottled is returned to a client the server refused for exceeding its
// per-device rate limit; RetryAfter is the server's suggested backoff.
type ErrThrottled struct {
	RetryAfter time.Duration
}

func (e *ErrThrottled) Error() string {
	return fmt.Sprintf("ingest: throttled, retry after %s", e.RetryAfter)
}

// ErrRedirect is returned to a client whose hello reached a cluster node
// that does not own the device: Addr is the stream address of the node that
// does (per the answering node's membership view). The client reconnects
// there with its usual Backoff; on membership churn the target may bounce
// it again until the views converge.
type ErrRedirect struct {
	Addr string
}

func (e *ErrRedirect) Error() string {
	return fmt.Sprintf("ingest: device reassigned, reconnect to %s", e.Addr)
}

var helloMagic = []byte("FLTS2\n")

// Hello-ack status codes.
const (
	ackOK        = 0
	ackThrottled = 1
	ackDraining  = 2
	// ackRedirect tells the client another node owns this device. Unlike
	// the other statuses its argument is a string: arg = owner-address
	// length, followed by that many address bytes.
	ackRedirect = 3
)

// maxRedirectAddr caps the address a redirect ack may carry.
const maxRedirectAddr = 256

const (
	// MaxFrame caps a frame body; matches the METR file record cap.
	MaxFrame = 1 << 20
	// maxDeviceID caps the hello's device-identifier length.
	maxDeviceID = 4096
)

// finByte is the reserved record-type byte (trace.RecInvalid) whose
// single-byte frame body marks a clean end of stream.
const finByte = 0x00

// batchByte marks a frame body holding a batch of records. It sits above
// every real record-type byte (trace.RecAppName..RecScreen are 1..5), so a
// body's first byte distinguishes FIN, single record and batch.
const batchByte = 0x06

// maxBatchRecords caps the record count a batch body may declare; with the
// MaxFrame body cap it bounds what a hostile count can make the server do.
const maxBatchRecords = 1 << 16

// isFin reports whether a frame body is the end-of-stream marker.
func isFin(body []byte) bool { return len(body) == 1 && body[0] == finByte }

// writeHello writes the connection preamble. lastSeq is the sequence number
// of the next record the client would send — how many records it believes
// the server has already accepted (0 on a fresh stream).
func writeHello(w io.Writer, device string, start trace.Timestamp, lastSeq int64) error {
	b := append([]byte(nil), helloMagic...)
	b = binary.AppendUvarint(b, uint64(len(device)))
	b = append(b, device...)
	b = binary.AppendVarint(b, int64(start))
	b = binary.AppendUvarint(b, uint64(lastSeq))
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(b))
	b = append(b, crcb[:]...)
	_, err := w.Write(b)
	return err
}

// readUvarintInto reads a uvarint while appending its raw bytes to *raw.
func readUvarintInto(r *bufio.Reader, raw *[]byte) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		*raw = append(*raw, c)
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, errors.New("uvarint overflow")
			}
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, errors.New("uvarint overflow")
}

// readHello parses and CRC-verifies the connection preamble. Unlike frame
// errors, a bad hello never identifies a device — it is counted globally
// and the connection dropped without an ack.
func readHello(r *bufio.Reader) (device string, start trace.Timestamp, lastSeq int64, err error) {
	raw := make([]byte, 0, 64)
	var m [6]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return "", 0, 0, ErrBadHello
	}
	for i := range m {
		if m[i] != helloMagic[i] {
			return "", 0, 0, ErrBadHello
		}
	}
	raw = append(raw, m[:]...)
	dlen, err := readUvarintInto(r, &raw)
	if err != nil || dlen == 0 || dlen > maxDeviceID {
		return "", 0, 0, ErrBadHello
	}
	dev := make([]byte, dlen)
	if _, err := io.ReadFull(r, dev); err != nil {
		return "", 0, 0, ErrBadHello
	}
	raw = append(raw, dev...)
	su, err := readUvarintInto(r, &raw)
	if err != nil {
		return "", 0, 0, ErrBadHello
	}
	s := int64(su>>1) ^ -int64(su&1) // zigzag decode (binary.AppendVarint)
	seq, err := readUvarintInto(r, &raw)
	if err != nil {
		return "", 0, 0, ErrBadHello
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return "", 0, 0, ErrBadHello
	}
	if binary.LittleEndian.Uint32(crcb[:]) != crc32.ChecksumIEEE(raw) {
		return "", 0, 0, ErrBadHello
	}
	return string(dev), trace.Timestamp(s), int64(seq), nil
}

// writeAck writes a hello (or FIN) acknowledgement.
func writeAck(w io.Writer, status byte, arg uint64) error {
	b := []byte{status}
	b = binary.AppendUvarint(b, arg)
	_, err := w.Write(b)
	return err
}

// writeRedirectAck writes a redirect acknowledgement carrying the stream
// address of the node that owns the device.
func writeRedirectAck(w io.Writer, addr string) error {
	if len(addr) == 0 || len(addr) > maxRedirectAddr {
		return fmt.Errorf("ingest: redirect address %q out of range", addr)
	}
	b := []byte{ackRedirect}
	b = binary.AppendUvarint(b, uint64(len(addr)))
	b = append(b, addr...)
	_, err := w.Write(b)
	return err
}

// readAck parses an acknowledgement and maps non-OK statuses to errors.
func readAck(r *bufio.Reader) (arg int64, err error) {
	status, err := r.ReadByte()
	if err != nil {
		return 0, ErrBadAck
	}
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, ErrBadAck
	}
	switch status {
	case ackOK:
		return int64(v), nil
	case ackThrottled:
		return 0, &ErrThrottled{RetryAfter: time.Duration(v) * time.Millisecond}
	case ackDraining:
		return 0, ErrDraining
	case ackRedirect:
		if v == 0 || v > maxRedirectAddr {
			return 0, ErrBadAck
		}
		addr := make([]byte, v)
		if _, err := io.ReadFull(r, addr); err != nil {
			return 0, ErrBadAck
		}
		return 0, &ErrRedirect{Addr: string(addr)}
	default:
		return 0, ErrBadAck
	}
}

// appendFrame appends one framed body (sequence number, length prefix,
// body, CRC over all three) to dst.
//
//repolint:noalloc
func appendFrame(dst []byte, seq int64, body []byte) []byte {
	head := len(dst)
	dst = binary.AppendUvarint(dst, uint64(seq))
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(dst[head:]))
	return append(dst, crcb[:]...)
}

// frameReader reads frames from a buffered stream, reusing one body buffer.
// The CRC read buffer is a field rather than a stack variable: passing a
// stack array through the io.ReadFull interface makes it escape, and the
// resulting 8 B/op showed up on every frame of every connection
// (TestFrameDecodeAllocFree pins the fix).
type frameReader struct {
	r    *bufio.Reader
	buf  []byte
	head []byte
	crcb [4]byte
}

func newFrameReader(r *bufio.Reader) *frameReader {
	return &frameReader{r: r, buf: make([]byte, 0, 2048)}
}

// next returns the next frame's sequence number and body; the body is valid
// until the following call. A clean end of stream is io.EOF. ErrFrameCRC
// means the frame (and the timestamp chain) cannot be trusted — the caller
// must sever the connection and rely on resume. The body buffer grows to
// the actual bytes read, never to an attacker-claimed length beyond
// MaxFrame.
//
//repolint:noalloc
func (f *frameReader) next() (seq int64, body []byte, err error) {
	f.head = f.head[:0]
	s, err := readUvarintInto(f.r, &f.head)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrFrameTruncated
	}
	blen, err := readUvarintInto(f.r, &f.head)
	if err != nil {
		return 0, nil, ErrFrameTruncated
	}
	if blen > MaxFrame {
		return 0, nil, ErrFrameTooBig
	}
	// Fast path: when the whole frame (body + CRC) fits the bufio buffer,
	// serve the body as an alias into it — no copy. Discard only advances
	// the read cursor; the bytes stay put until the next fill, which
	// matches the valid-until-next-call contract. Peek failing (buffer too
	// small, or EOF racing a partial frame) falls through to the copying
	// path, which reports the precise framing error.
	if full, err := f.r.Peek(int(blen) + 4); err == nil {
		body = full[:blen]
		crc := crc32.ChecksumIEEE(f.head)
		crc = crc32.Update(crc, crc32.IEEETable, body)
		want := binary.LittleEndian.Uint32(full[blen:])
		f.r.Discard(int(blen) + 4) //nolint:errcheck // peeked bytes are buffered
		if want != crc {
			return 0, nil, ErrFrameCRC
		}
		return int64(s), body, nil
	}
	if cap(f.buf) < int(blen) {
		f.buf = make([]byte, blen)
	}
	body = f.buf[:blen]
	if _, err := io.ReadFull(f.r, body); err != nil {
		return 0, nil, ErrFrameTruncated
	}
	if _, err := io.ReadFull(f.r, f.crcb[:]); err != nil {
		return 0, nil, ErrFrameTruncated
	}
	crc := crc32.ChecksumIEEE(f.head)
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if binary.LittleEndian.Uint32(f.crcb[:]) != crc {
		return 0, nil, ErrFrameCRC
	}
	return int64(s), body, nil
}
