package ingest

import (
	"hash/fnv"
	"sort"
	"strconv"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// ring is a consistent-hash ring mapping device IDs to shards. Virtual
// nodes smooth the distribution; with the shard count fixed for a server's
// lifetime the ring is equivalent to a modulo, but keeping the placement
// function consistent means a future resharding (growing the pool, moving
// devices between processes) relocates only ~1/n of devices.
type ring struct {
	hashes []uint64
	shards []int
}

const vnodesPerShard = 64

func newRing(shards int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, shards*vnodesPerShard),
		shards: make([]int, 0, shards*vnodesPerShard),
	}
	type point struct {
		h uint64
		s int
	}
	pts := make([]point, 0, shards*vnodesPerShard)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			pts = append(pts, point{hash64("shard-" + strconv.Itoa(s) + "-" + strconv.Itoa(v)), s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.shards = append(r.shards, p.s)
	}
	return r
}

// shard returns the shard index owning device.
func (r *ring) shard(device string) int {
	h := hash64(device)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// recordBatch is a chunk of decoded records for one device, with payloads
// copied out of the connection's frame buffer so they survive the channel
// crossing.
type recordBatch struct {
	device string
	recs   []trace.Record
}

// shardReq is one message on a shard's queue. Exactly one field is set.
type shardReq struct {
	batch       *recordBatch
	closeDevice string                            // finalize this device's stream
	query       chan<- *analysis.StreamResult     // snapshot-merge request
}

// shard owns a disjoint subset of devices. All state is confined to the
// shard goroutine; the bounded channel is both the hand-off and the
// backpressure mechanism (a full queue blocks the connection handler,
// which in turn stops reading and lets TCP flow control push back on the
// device).
type shard struct {
	id   int
	ch   chan shardReq
	opts energy.Options

	// Goroutine-confined state.
	live    map[string]*analysis.StreamAccumulator
	retired *analysis.StreamResult

	done chan struct{}
}

func newShard(id, queueDepth int, opts energy.Options) *shard {
	return &shard{
		id:      id,
		ch:      make(chan shardReq, queueDepth),
		opts:    opts,
		live:    map[string]*analysis.StreamAccumulator{},
		retired: analysis.NewStreamResult("fleet"),
		done:    make(chan struct{}),
	}
}

// run is the shard worker loop. It exits when the channel is closed, after
// draining everything still queued and finalising every live device — the
// graceful-shutdown guarantee that no accepted record is dropped.
func (s *shard) run() {
	defer close(s.done)
	for req := range s.ch {
		switch {
		case req.batch != nil:
			acc := s.live[req.batch.device]
			if acc == nil {
				acc = analysis.NewStreamAccumulator(req.batch.device, s.opts)
				s.live[req.batch.device] = acc
			}
			for i := range req.batch.recs {
				acc.Feed(&req.batch.recs[i])
			}
		case req.closeDevice != "":
			if acc := s.live[req.closeDevice]; acc != nil {
				s.retired.Merge(acc.Finish())
				delete(s.live, req.closeDevice)
			}
		case req.query != nil:
			req.query <- s.snapshot()
		}
	}
	for dev, acc := range s.live {
		s.retired.Merge(acc.Finish())
		delete(s.live, dev)
	}
}

// snapshot merges the retired aggregate with a Snapshot of every live
// device stream.
func (s *shard) snapshot() *analysis.StreamResult {
	agg := s.retired.Clone()
	for _, acc := range s.live {
		agg.Merge(acc.Snapshot())
	}
	return agg
}

// depth reports the current queue occupancy (an observability gauge; racy
// by nature, exact enough for monitoring).
func (s *shard) depth() int { return len(s.ch) }
