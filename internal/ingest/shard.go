package ingest

import (
	"hash/crc32"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/trace"
)

// ring is the in-process consistent-hash placement mapping device IDs to
// shards: a NodeRing over synthetic "shard-<i>" names (the vnode keys are
// unchanged from before the lift, so placements survive the refactor).
// Keeping the placement function consistent means a resharding (growing the
// pool, moving devices between processes) relocates only ~1/n of devices;
// the cluster tier reuses the same NodeRing for device→node assignment.
type ring struct {
	nr  *NodeRing
	idx map[string]int
}

func newRing(shards int) *ring {
	names := make([]string, shards)
	idx := make(map[string]int, shards)
	for s := 0; s < shards; s++ {
		names[s] = "shard-" + strconv.Itoa(s)
		idx[names[s]] = s
	}
	return &ring{nr: NewNodeRing(names), idx: idx}
}

// shard returns the shard index owning device.
func (r *ring) shard(device string) int { return r.idx[r.nr.Owner(device)] }

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// recordBatch is a chunk of decoded records for one device, with payloads
// copied out of the connection's frame buffer so they survive the channel
// crossing. Record i carries sequence number firstSeq+i — the handler only
// batches contiguous accepted frames. enqueuedNS stamps the hand-off so the
// shard can report queue latency (the backpressure gauge with a time axis).
//
// Exactly one of cols and recs is set. cols is the hot path: a pooled
// columnar batch whose payload bytes live in its shared arena; the shard
// returns it to batchPool after applying. recs is the row form kept for
// the instrumentation benchmarks and any future non-columnar producer.
type recordBatch struct {
	device     string
	firstSeq   int64
	cols       *trace.RecordBatch
	recs       []trace.Record
	enqueuedNS int64
}

// batchPool recycles the columnar batches that carry accepted records from
// connection handlers to shard workers. Handlers Get, shard workers Put
// after FeedBatch; steady-state ingest therefore reuses a handful of
// arenas instead of allocating per record.
var batchPool = sync.Pool{New: func() any { return new(trace.RecordBatch) }}

// finReq asks the shard to finalize a device stream; the reply is the
// device's accepted-record count, which the handler echoes to the client
// as the FIN acknowledgement.
type finReq struct {
	device string
	reply  chan<- int64
}

// seqReq asks for a device's resume point (its accepted-record count); sent
// during the handshake so the ack can tell the client where to resume.
type seqReq struct {
	device string
	reply  chan<- int64
}

// skipReq advances a device's sequence past a poison record — one that
// repeatedly fails to decode — so the stream is not wedged forever. The
// record is lost (and counted), which is the explicit, bounded alternative
// to an unbounded reconnect loop.
type skipReq struct {
	device string
	seq    int64
}

// shardCkpt is one shard's contribution to a checkpoint: the durable state
// of every live device it owns, one ledger entry per finalized device, and
// a clone of its legacy (unattributed) retired aggregate — state restored
// from pre-ledger checkpoints, which has no per-device breakdown.
type shardCkpt struct {
	devices []checkpoint.DeviceState
	ledger  []checkpoint.RetiredRecord
	retired *analysis.StreamResult
}

// ledgerEntry is a shard's record of one finalized device: the sequence its
// stream closed at and the device's serialized final StreamResult. The blob
// is what a handoff receiver merges; the seq is what makes that merge dedup
// positionally like any live entry.
type ledgerEntry struct {
	seq  int64
	crc  uint32
	blob []byte
}

// retiredTransfer is one ledger entry adopted from a checkpoint handoff,
// with the blob decoded by the server (decode-before-mutate) so the shard
// worker only merges.
type retiredTransfer struct {
	device string
	seq    int64
	crc    uint32
	blob   []byte
	res    *analysis.StreamResult
}

// transferEntry is one device's state adopted from a checkpoint handoff:
// its accepted-record high-water mark and, for a stream that was still live
// on the dead node, its decoded accumulator (nil for finalized devices,
// whose contribution rides in the transfer's retired aggregate).
type transferEntry struct {
	device string
	seq    int64
	acc    *analysis.StreamAccumulator
}

// restoreReq installs transferred device state into a running shard. Unlike
// checkpoint restore at Start (single-threaded, before the worker runs),
// this races with live ingest, so it goes through the queue like everything
// else and the worker applies it with the same positional rule: an incoming
// seq wins only if it is strictly ahead of what this shard has accepted.
type restoreReq struct {
	entries []transferEntry
	// ledger carries the transfer's per-device retirement entries owned by
	// this shard; each is adopted with the same strictly-ahead rule as a
	// live entry, so a device that was re-streamed in full locally (the
	// lost-FIN-ack scenario) dedups to exactly-once.
	ledger  []retiredTransfer
	retired *analysis.StreamResult // legacy aggregate, merged once; nil on all but one request
	reply   chan<- transferReply
}

// transferReply reports what a shard did with a restoreReq.
type transferReply struct {
	accepted int   // entries adopted (incoming seq ahead of local)
	stale    int   // entries dropped (local state already at or past seq)
	records  int64 // record-count delta added to the accepted totals
}

// shardReq is one message on a shard's queue. Exactly one field is set.
type shardReq struct {
	batch   *recordBatch
	fin     *finReq
	seq     *seqReq
	skip    *skipReq
	restore *restoreReq
	query   chan<- *analysis.StreamResult // snapshot-merge request
	segSync chan<- error                  // flush open segments for a reader
	ckpt    chan<- shardCkpt
}

// shard owns a disjoint subset of devices. All state is confined to the
// shard goroutine; the bounded channel is both the hand-off and the
// backpressure mechanism (a full queue blocks the connection handler,
// which in turn stops reading and lets TCP flow control push back on the
// device).
type shard struct {
	id   int
	ch   chan shardReq
	opts energy.Options

	counters *counters
	reg      *deviceRegistry

	// Goroutine-confined state. seqs is the per-device accepted-record
	// high-water mark: the authoritative dedup/resume point, retained even
	// after a device finalizes so a replayed FIN or late duplicate stays
	// idempotent. It is only written here (and during single-threaded
	// checkpoint restore, before the worker starts). retired is the serving
	// aggregate (everything finalized, however it arrived); ledger holds the
	// per-device attribution behind it; retiredLegacy is the slice of retired
	// that has no attribution (v1 restores, legacy-blob transfers) and is
	// what checkpoints re-emit as the blind aggregate.
	live          map[string]*analysis.StreamAccumulator
	seqs          map[string]int64
	retired       *analysis.StreamResult
	retiredLegacy *analysis.StreamResult
	ledger        map[string]*ledgerEntry

	// seg, when non-nil, persists accepted records as queryable METR-3
	// segment files (goroutine-confined like the rest of the state).
	seg *segmentStore

	done chan struct{}
}

func newShard(id, queueDepth int, opts energy.Options, c *counters, reg *deviceRegistry, seg *segmentStore) *shard {
	return &shard{
		id:            id,
		ch:            make(chan shardReq, queueDepth),
		opts:          opts,
		counters:      c,
		reg:           reg,
		live:          map[string]*analysis.StreamAccumulator{},
		seqs:          map[string]int64{},
		retired:       analysis.NewStreamResult("fleet"),
		retiredLegacy: analysis.NewStreamResult("fleet"),
		ledger:        map[string]*ledgerEntry{},
		seg:           seg,
		done:          make(chan struct{}),
	}
}

// run is the shard worker loop. It exits when the channel is closed, after
// draining everything still queued and finalising every live device — the
// graceful-shutdown guarantee that no accepted record is dropped.
func (s *shard) run() {
	defer close(s.done)
	for req := range s.ch {
		switch {
		case req.batch != nil:
			s.feed(req.batch)
		case req.fin != nil:
			s.retire(req.fin.device)
			req.fin.reply <- s.seqs[req.fin.device]
		case req.seq != nil:
			req.seq.reply <- s.seqs[req.seq.device]
		case req.skip != nil:
			if s.seqs[req.skip.device] == req.skip.seq {
				s.seqs[req.skip.device] = req.skip.seq + 1
				s.counters.recordsSkipped.Add(1)
			}
		case req.restore != nil:
			req.restore.reply <- s.adopt(req.restore)
		case req.query != nil:
			req.query <- s.snapshot()
		case req.segSync != nil:
			if s.seg != nil {
				req.segSync <- s.seg.sync()
			} else {
				req.segSync <- nil
			}
		case req.ckpt != nil:
			req.ckpt <- s.checkpoint()
		}
	}
	for dev := range s.live {
		s.retire(dev)
	}
	if s.seg != nil {
		s.seg.closeAll()
	}
}

// retire finalizes a live device stream: its result is merged into the
// serving aggregate and recorded in the retirement ledger under the
// device's final sequence number. Idempotent — a re-sent FIN for an
// already-finalized device is a no-op.
func (s *shard) retire(dev string) {
	acc := s.live[dev]
	if acc == nil {
		return
	}
	res := acc.Finish()
	blob := res.AppendBinary(nil)
	s.retired.Merge(res)
	s.ledger[dev] = &ledgerEntry{seq: s.seqs[dev], crc: crc32.ChecksumIEEE(blob), blob: blob}
	delete(s.live, dev)
	if s.seg != nil {
		s.seg.seal(dev)
	}
}

// feed applies a batch positionally: a record is accepted only when its
// sequence number equals the device's high-water mark. Anything below is a
// replay from a resumed or stale connection (dropped, counted); anything
// above would be a gap the handler should have severed on and is dropped
// the same way. First connection to deliver a given seq wins — duplicates
// can never double-count energy.
//
//repolint:noalloc
func (s *shard) feed(b *recordBatch) {
	// Per-batch (not per-record) instrumentation: two histogram
	// observations amortized over up to BatchSize records keeps the apply
	// path allocation-free and the overhead inside the noise floor.
	if b.enqueuedNS > 0 {
		s.counters.applySeconds.Observe(float64(time.Now().UnixNano()-b.enqueuedNS) / 1e9)
	}
	if b.cols != nil {
		s.applyBatch(b)
		return
	}
	s.counters.batchRecords.Observe(float64(len(b.recs)))
	exp := s.seqs[b.device]
	var acc *analysis.StreamAccumulator
	dev := s.reg.get(b.device)
	for i := range b.recs {
		seq := b.firstSeq + int64(i)
		if seq != exp {
			s.counters.duplicates.Add(1)
			continue
		}
		if acc == nil {
			if acc = s.live[b.device]; acc == nil {
				acc = analysis.NewStreamAccumulator(b.device, s.opts)
				s.live[b.device] = acc
			}
		}
		acc.Feed(&b.recs[i])
		if s.seg != nil {
			s.seg.appendRecord(b.device, &b.recs[i])
		}
		exp++
		s.counters.records.Add(1)
		dev.records.Add(1)
	}
	s.seqs[b.device] = exp
}

// applyBatch is the columnar twin of the recs loop in feed: the handler
// guarantees the batch is one contiguous run starting at firstSeq, so the
// positional rule collapses to window arithmetic — everything before the
// high-water mark is a replay, everything from it on feeds the accumulator
// in one FeedBatch call. The batch goes back to batchPool afterwards.
//
//repolint:noalloc
func (s *shard) applyBatch(b *recordBatch) {
	n := b.cols.Len()
	s.counters.batchRecords.Observe(float64(n))
	exp := s.seqs[b.device]
	k := exp - b.firstSeq
	if k < 0 || k >= int64(n) {
		// Entirely behind the high-water mark (a resumed connection's
		// replay racing a newer one) or entirely ahead (a gap the handler
		// should have severed on): every record drops positionally.
		s.counters.duplicates.Add(int64(n))
		batchPool.Put(b.cols)
		return
	}
	if k > 0 {
		s.counters.duplicates.Add(k)
	}
	acc := s.live[b.device]
	if acc == nil {
		acc = analysis.NewStreamAccumulator(b.device, s.opts)
		s.live[b.device] = acc
	}
	view := b.cols.Slice(int(k), n)
	acc.FeedBatch(&view)
	if s.seg != nil {
		s.seg.appendBatch(b.device, &view)
	}
	accepted := int64(n) - k
	s.seqs[b.device] = exp + accepted
	s.counters.records.Add(accepted)
	s.reg.get(b.device).records.Add(accepted)
	batchPool.Put(b.cols)
}

// adopt applies a checkpoint handoff to the shard's live state. Each entry
// replaces local state only when its seq is strictly ahead — an accumulator
// at seq k is bit-determined by records 0..k-1, so whichever side has seen
// more of the (append-only, positionally-deduped) stream holds a superset
// of the other and replacement never loses accepted records. Entries at or
// behind the local high-water mark are stale replays of state this shard
// already has (or has surpassed via client retransmission) and are dropped,
// which makes re-delivering the same transfer idempotent.
func (s *shard) adopt(r *restoreReq) transferReply {
	var rep transferReply
	for _, e := range r.entries {
		cur := s.seqs[e.device]
		if e.seq <= cur {
			rep.stale++
			continue
		}
		if e.acc != nil {
			s.live[e.device] = e.acc
		} else {
			// Finalized on the dead node: its result arrives in the
			// transfer's retired aggregate, so any partial re-stream this
			// shard accumulated is superseded and discarded.
			delete(s.live, e.device)
		}
		delta := e.seq - cur
		s.seqs[e.device] = e.seq
		s.counters.records.Add(delta)
		s.reg.get(e.device).records.Add(delta)
		rep.accepted++
		rep.records += delta
	}
	for i := range r.ledger {
		e := &r.ledger[i]
		if s.ledger[e.device] != nil {
			// Retirement is terminal: this shard already holds the device's
			// finalized contribution (first retirement wins), so the entry is
			// a replay — the re-streamed-then-handed-off double-count window.
			rep.stale++
			continue
		}
		cur := s.seqs[e.device]
		if e.seq <= cur {
			// The device's records were all re-delivered here live (and will
			// retire locally when its session FINs); merging the blob on top
			// would double-count them.
			rep.stale++
			continue
		}
		s.retired.Merge(e.res)
		s.ledger[e.device] = &ledgerEntry{seq: e.seq, crc: e.crc, blob: e.blob}
		// Any partial local re-stream is a strict subset of the finalized
		// blob; discard it.
		delete(s.live, e.device)
		delta := e.seq - cur
		s.seqs[e.device] = e.seq
		s.counters.records.Add(delta)
		s.reg.get(e.device).records.Add(delta)
		rep.accepted++
		rep.records += delta
	}
	if r.retired != nil {
		s.retired.Merge(r.retired)
		s.retiredLegacy.Merge(r.retired)
	}
	return rep
}

// snapshot merges the retired aggregate with a Snapshot of every live
// device stream.
func (s *shard) snapshot() *analysis.StreamResult {
	agg := s.retired.Clone()
	for _, acc := range s.live {
		agg.Merge(acc.Snapshot())
	}
	return agg
}

// checkpoint serializes the shard's durable state: live accumulators with
// their sequence numbers, one ledger entry per finalized device, bare
// sequence numbers for devices in neither set (skip-advanced or
// v1-restored finals), and a clone of the legacy unattributed aggregate
// (the server merges and encodes those).
func (s *shard) checkpoint() shardCkpt {
	ck := shardCkpt{retired: s.retiredLegacy.Clone()}
	for dev, acc := range s.live {
		ck.devices = append(ck.devices, checkpoint.DeviceState{
			Device: dev, Seq: s.seqs[dev], Acc: acc.AppendState(nil),
		})
	}
	for dev, seq := range s.seqs {
		if s.live[dev] == nil && s.ledger[dev] == nil {
			ck.devices = append(ck.devices, checkpoint.DeviceState{Device: dev, Seq: seq})
		}
	}
	for dev, e := range s.ledger {
		ck.ledger = append(ck.ledger, checkpoint.RetiredRecord{
			Device: dev, Seq: e.seq, CRC: e.crc, Blob: e.blob,
		})
	}
	return ck
}

// depth reports the current queue occupancy (an observability gauge; racy
// by nature, exact enough for monitoring).
func (s *shard) depth() int { return len(s.ch) }
