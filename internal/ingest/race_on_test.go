//go:build race

package ingest

// raceEnabled lets allocation-count tests skip under the race detector,
// whose instrumentation (notably around sync.Pool) allocates on paths
// that are allocation-free in a normal build.
const raceEnabled = true
