// Benchmarks for the wire protocol, the shard apply path, the checkpoint
// store and the full TCP ingest loop. scripts/bench.sh runs these (with the
// analysis-side benchmarks) and records the results as BENCH_<date>.json.
//
// TestApplyAllocFree is the zero-allocation policy guard from DESIGN.md:
// the instrumented shard apply path must not allocate in steady state, so
// metrics can never become the ingest bottleneck.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// benchTrace returns a deterministic single-device trace (~20k records).
var benchTraceOnce sync.Once
var benchTraceVal *trace.DeviceTrace

func benchTrace() *trace.DeviceTrace {
	benchTraceOnce.Do(func() {
		benchTraceVal = synthgen.GenerateDevice(synthgen.Small(1, 2), 0)
	})
	return benchTraceVal
}

func BenchmarkFrameEncode(b *testing.B) {
	dt := benchTrace()
	enc := trace.NewRecordEncoder(dt.Start)
	var frame []byte
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := enc.Encode(&dt.Records[i%len(dt.Records)])
		if err != nil {
			b.Fatal(err)
		}
		frame = appendFrame(frame[:0], int64(i), body)
		bytesOut += int64(len(frame))
	}
	b.SetBytes(bytesOut / int64(b.N))
}

func BenchmarkFrameDecode(b *testing.B) {
	dt := benchTrace()
	enc := trace.NewRecordEncoder(dt.Start)
	var wire []byte
	n := len(dt.Records)
	for i := 0; i < n; i++ {
		body, err := enc.Encode(&dt.Records[i])
		if err != nil {
			b.Fatal(err)
		}
		wire = appendFrame(wire, int64(i), body)
	}
	b.SetBytes(int64(len(wire)) / int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	var fr *frameReader
	var dec *trace.RecordDecoder
	for i := 0; i < b.N; i++ {
		if i%n == 0 { // restart the stream (and the timestamp delta chain)
			fr = newFrameReader(bufio.NewReaderSize(bytes.NewReader(wire), 1<<16))
			dec = trace.NewRecordDecoder(dt.Start)
		}
		_, body, err := fr.next()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(body); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFrameDecodeAllocFree pins the steady-state allocation behaviour of
// the frame decode path. Two past leaks are covered: the per-call CRC
// scratch slice (now the frameReader's crcb field) and the body copy (now
// served zero-copy from the bufio buffer via the Peek fast path). With a
// buffer large enough to hold each frame, next()+Decode must not allocate
// at all.
func TestFrameDecodeAllocFree(t *testing.T) {
	dt := benchTrace()
	enc := trace.NewRecordEncoder(dt.Start)
	var wire []byte
	n := len(dt.Records)
	for i := 0; i < n; i++ {
		body, err := enc.Encode(&dt.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		wire = appendFrame(wire, int64(i), body)
	}
	var fr *frameReader
	var dec *trace.RecordDecoder
	i := 0
	step := func() {
		if i%n == 0 { // restart the stream (and the timestamp delta chain)
			fr = newFrameReader(bufio.NewReaderSize(bytes.NewReader(wire), 1<<16))
			dec = trace.NewRecordDecoder(dt.Start)
		}
		_, body, err := fr.next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(body); err != nil {
			t.Fatal(err)
		}
		i++
	}
	step() // warm: reader and decoder buffers
	// The restart every n steps allocates a fresh reader; amortized over
	// 2n runs that is the only permitted allocation source, and it stays
	// well under 1 alloc per frame only if the per-frame path is clean.
	allocs := testing.AllocsPerRun(2*n, step)
	if allocs > 0.01 {
		t.Fatalf("frame decode allocates %.4f times per frame, want ~0", allocs)
	}
}

// benchApplyShard returns a warmed shard and a cycling batch feeder: each
// call hands the shard the next batchSize records of the trace at the
// shard's current high-water sequence, so every record is accepted.
func benchApplyShard(batchSize int) (*shard, func()) {
	dt := benchTrace()
	sh := newShard(0, 1, batchOpts(), newCounters(), newDeviceRegistry(), nil)
	pos := 0
	batch := &recordBatch{device: dt.Device}
	feed := func() {
		if pos+batchSize > len(dt.Records) {
			pos = 0 // cycle; one time rewind per pass, state stays steady
		}
		batch.firstSeq = sh.seqs[dt.Device]
		batch.recs = dt.Records[pos : pos+batchSize]
		batch.enqueuedNS = time.Now().UnixNano()
		sh.feed(batch)
		pos += batchSize
	}
	return sh, feed
}

// BenchmarkApplyInstrumented is the shard apply path exactly as production
// runs it: positional dedup, accumulator feed, per-device counters, and the
// obs histograms (apply latency + batch size). The acceptance bar is 0
// allocs/op and throughput within 3% of BenchmarkApplyBare.
func BenchmarkApplyInstrumented(b *testing.B) {
	const batchSize = 128
	_, feed := benchApplyShard(batchSize)
	feed() // warm: accumulator, registry entry, ledger day keys
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed()
	}
	b.ReportMetric(float64(b.N)*batchSize/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkApplyBare is the uninstrumented floor: a line-for-line copy of
// shard.feed with the histogram observations (and their time stamps)
// removed, over the same batches — the baseline the ≤3% instrumentation
// budget is measured against.
func BenchmarkApplyBare(b *testing.B) {
	const batchSize = 128
	dt := benchTrace()
	sh := newShard(0, 1, batchOpts(), newCounters(), newDeviceRegistry(), nil)
	pos := 0
	batch := &recordBatch{device: dt.Device}
	feed := func() {
		if pos+batchSize > len(dt.Records) {
			pos = 0
		}
		batch.firstSeq = sh.seqs[dt.Device]
		batch.recs = dt.Records[pos : pos+batchSize]
		// shard.feed minus the two Observe calls and time.Now.
		exp := sh.seqs[batch.device]
		var acc *analysis.StreamAccumulator
		dev := sh.reg.get(batch.device)
		for i := range batch.recs {
			seq := batch.firstSeq + int64(i)
			if seq != exp {
				sh.counters.duplicates.Add(1)
				continue
			}
			if acc == nil {
				if acc = sh.live[batch.device]; acc == nil {
					acc = analysis.NewStreamAccumulator(batch.device, sh.opts)
					sh.live[batch.device] = acc
				}
			}
			acc.Feed(&batch.recs[i])
			if sh.seg != nil {
				sh.seg.appendRecord(batch.device, &batch.recs[i])
			}
			exp++
			sh.counters.records.Add(1)
			dev.records.Add(1)
		}
		sh.seqs[batch.device] = exp
		pos += batchSize
	}
	feed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed()
	}
	b.ReportMetric(float64(b.N)*batchSize/b.Elapsed().Seconds(), "records/s")
}

// TestApplyAllocFree enforces the zero-allocation instrumentation policy:
// in steady state the full instrumented apply path — histograms included —
// performs no heap allocation per batch.
func TestApplyAllocFree(t *testing.T) {
	const batchSize = 128
	_, feed := benchApplyShard(batchSize)
	for i := 0; i < 50; i++ { // settle maps, bins and ledger day keys
		feed()
	}
	if allocs := testing.AllocsPerRun(200, feed); allocs > 0 {
		t.Fatalf("instrumented apply path allocates %.2f times per batch, want 0", allocs)
	}
}

// TestBatchApplyAllocFree extends the zero-allocation policy to the
// columnar apply path: a pooled RecordBatch through shard.feed
// (applyBatch, positional dedup, FeedBatch, counters, histograms) must not
// allocate in steady state. The feeder mirrors handleConn: get a batch
// from the pool, fill it from the wire records, hand it to the shard,
// which recycles it back into the pool.
func TestBatchApplyAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool allocates under the race detector")
	}
	const batchSize = 128
	dt := benchTrace()
	sh := newShard(0, 1, batchOpts(), newCounters(), newDeviceRegistry(), nil)
	pos := 0
	batch := &recordBatch{device: dt.Device}
	feed := func() {
		if pos+batchSize > len(dt.Records) {
			pos = 0 // cycle; state stays steady
		}
		cols := batchPool.Get().(*trace.RecordBatch)
		cols.Reset()
		for i := pos; i < pos+batchSize; i++ {
			cols.Append(&dt.Records[i])
		}
		batch.firstSeq = sh.seqs[dt.Device]
		batch.cols = cols
		batch.enqueuedNS = time.Now().UnixNano()
		sh.feed(batch)
		pos += batchSize
	}
	for i := 0; i < 50; i++ { // settle pool, arena caps and ledger day keys
		feed()
	}
	if allocs := testing.AllocsPerRun(200, feed); allocs > 0 {
		t.Fatalf("columnar apply path allocates %.2f times per batch, want 0", allocs)
	}
}

// newBenchAccumulator returns a stream accumulator fed the first n records
// of dt — realistic per-device checkpoint state.
func newBenchAccumulator(dt *trace.DeviceTrace, n int) *analysis.StreamAccumulator {
	acc := analysis.NewStreamAccumulator(dt.Device, batchOpts())
	if n > len(dt.Records) {
		n = len(dt.Records)
	}
	for i := 0; i < n; i++ {
		acc.Feed(&dt.Records[i])
	}
	return acc
}

func benchSnapshot(nDevices int) *checkpoint.Snapshot {
	dt := benchTrace()
	var snap checkpoint.Snapshot
	for i := 0; i < nDevices; i++ {
		acc := newBenchAccumulator(dt, 2000)
		snap.Devices = append(snap.Devices, checkpoint.DeviceState{
			Device: dt.Device + "-" + string(rune('a'+i)),
			Seq:    2000,
			Acc:    acc.AppendState(nil),
		})
	}
	return &snap
}

func BenchmarkCheckpointSave(b *testing.B) {
	st, err := checkpoint.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Save(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointRestore(b *testing.B) {
	st, err := checkpoint.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := st.Save(benchSnapshot(16)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, _, err := st.LoadLatest(nil)
		if err != nil {
			b.Fatal(err)
		}
		if snap == nil || len(snap.Devices) != 16 {
			b.Fatal("bad snapshot")
		}
	}
}

// benchFIN drives the session-completion path: each iteration runs 8
// concurrent short sessions to completion (dial, stream, FIN, ack) against
// a checkpointing server, so the durable variant's FIN group commit sees
// concurrent FINs to batch, exactly as production does. The periodic
// checkpoint loop is parked at an hour so the only fsyncs measured are the
// FIN-triggered ones. The server is recycled every 64 iterations (timer
// stopped) to keep the snapshot size — and so the per-FIN commit cost —
// steady instead of growing with b.N.
func benchFIN(b *testing.B, durable bool) {
	const lanes = 8
	dt := benchTrace()
	recs := dt.Records[:32]
	var s *Server
	shutdown := func() {
		if s == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}
	defer shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			b.StopTimer()
			shutdown()
			s = NewServer(Config{
				Addr: "127.0.0.1:0", Shards: 4, QueueDepth: 256, BatchSize: 128,
				CheckpointDir: b.TempDir(), CheckpointInterval: time.Hour,
				DurableFIN: durable,
			})
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		var wg sync.WaitGroup
		for l := 0; l < lanes; l++ {
			wg.Add(1)
			go func(i, l int) {
				defer wg.Done()
				dev := fmt.Sprintf("%s-fin-%d-%d", dt.Device, i, l)
				if _, err := StreamTrace(SessionConfig{
					Addr: s.Addr().String(), Device: dev, Start: dt.Start,
				}, recs); err != nil {
					b.Error(err)
				}
			}(i, l)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N*lanes), "fin_session_ms")
}

// BenchmarkFinDurable / BenchmarkFinVolatile are the -durable-fin cost
// pair: identical session workloads with the FIN-ack checkpoint commit on
// and off. scripts/bench.sh records the ns_per_op ratio as
// durable_fin_overhead_pct — the price of closing the completed-session
// loss window, quoted in DESIGN.md §10.
func BenchmarkFinDurable(b *testing.B)  { benchFIN(b, true) }
func BenchmarkFinVolatile(b *testing.B) { benchFIN(b, false) }

// BenchmarkIngestE2E measures whole-system throughput: 4 concurrent device
// sessions over real TCP into a 4-shard server, per iteration. The
// records/s metric is the fleet ingest rate scripts/bench.sh tracks.
func BenchmarkIngestE2E(b *testing.B) {
	fleet := synthgen.GenerateInMemory(synthgen.Small(4, 1))
	var total int64
	for _, dt := range fleet {
		total += int64(len(dt.Records))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewServer(Config{Addr: "127.0.0.1:0", Shards: 4, QueueDepth: 256, BatchSize: 128})
		if err := s.Start(); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, dt := range fleet {
			wg.Add(1)
			go func(dt *trace.DeviceTrace) {
				defer wg.Done()
				if _, err := StreamTrace(SessionConfig{
					Addr: s.Addr().String(), Device: dt.Device, Start: dt.Start,
				}, dt.Records); err != nil {
					b.Error(err)
				}
			}(dt)
		}
		wg.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
	b.ReportMetric(float64(b.N)*float64(total)/b.Elapsed().Seconds(), "records/s")
}
