package ingest

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
	"netenergy/internal/tsq"
)

// segRelTol matches the acceptance criterion: /query energy equals the
// equivalent batch run to one part in 1e6.
const segRelTol = 1e-6

func segClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= segRelTol*scale+1e-12
}

// TestQueryEndpointMatchesHeadline streams a fixed-seed fleet, lets every
// session FIN (sealing the segments), and checks GET /query over the whole
// span against the live headline: total_energy_j is the same attributed
// total computed two independent ways — once by the shard accumulators,
// once by the query engine re-reading the segment files.
func TestQueryEndpointMatchesHeadline(t *testing.T) {
	dir := t.TempDir()
	dts := synthgen.GenerateInMemory(synthgen.Small(3, 2))

	s := startServer(t, Config{
		AdminAddr: "127.0.0.1:0", Shards: 4, QueueDepth: 16, BatchSize: 32,
		SegmentDir: dir,
	})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	var wg sync.WaitGroup
	for _, dt := range dts {
		wg.Add(1)
		go func(dt *trace.DeviceTrace) {
			defer wg.Done()
			streamTrace(t, addrOf(s), dt)
		}(dt)
	}
	wg.Wait()

	base := "http://" + s.AdminAddr().String()
	var head LiveHeadline
	if code := adminGet(t, base+"/headline", &head); code != http.StatusOK {
		t.Fatalf("/headline: %d", code)
	}

	// Query [0, span_end + 1 day), not [SpanStartUS, SpanEndUS+1): the
	// headline span tracks network activity, but devices emit
	// app-name/proc-state records outside it (preamble before the first
	// transfer, trailing state changes after the last), and every record
	// must still be counted.
	var res tsq.Result
	url := fmt.Sprintf("%s/query?from=0&to=%d", base, head.SpanEndUS+86_400_000_000)
	if code := adminGet(t, url, &res); code != http.StatusOK {
		t.Fatalf("/query: %d", code)
	}
	if !segClose(res.TotalEnergyJ, head.TotalEnergyJ) {
		t.Fatalf("query total %g, headline total %g", res.TotalEnergyJ, head.TotalEnergyJ)
	}
	if res.Records != head.Records {
		t.Fatalf("query saw %d records, headline %d", res.Records, head.Records)
	}
	if res.Devices != head.Devices {
		t.Fatalf("query saw %d devices, headline %d", res.Devices, head.Devices)
	}
	// Sessions FIN'd, so segments are sealed: the scan must have used the
	// seek index (blocks counted), and a narrow window must skip blocks.
	if res.Scan.BlocksTotal == 0 {
		t.Fatalf("whole-span query examined no indexed blocks: %+v", res.Scan)
	}
	mid := (head.SpanStartUS + head.SpanEndUS) / 2
	var narrow tsq.Result
	url = fmt.Sprintf("%s/query?from=%d&to=%d", base, mid, mid+3600_000_000)
	if code := adminGet(t, url, &narrow); code != http.StatusOK {
		t.Fatalf("narrow /query: %d", code)
	}
	if narrow.Scan.BlocksSkipped == 0 {
		t.Fatalf("narrow query skipped no blocks: %+v", narrow.Scan)
	}
	// The pushdown counter metric is exported.
	if got := metricValue(t, base, "ingest_query_blocks_skipped_total"); got == 0 {
		t.Fatal("ingest_query_blocks_skipped_total not incremented")
	}
}

// TestQueryLiveTail: records from sessions still open (no FIN) are visible
// to /query via the synced, unsealed segment tail.
func TestQueryLiveTail(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, Config{
		AdminAddr: "127.0.0.1:0", Shards: 2, QueueDepth: 16, BatchSize: 4,
		SegmentDir: dir,
	})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	c, err := Dial(s.Addr().String(), "live-dev", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	recs := []trace.Record{
		{Type: trace.RecAppName, TS: 10, App: 1, AppName: "com.live"},
		{Type: trace.RecProcState, TS: 20, App: 1, State: trace.StateForeground},
		{Type: trace.RecScreen, TS: 30, ScreenOn: true},
		{Type: trace.RecScreen, TS: 40, ScreenOn: false},
		{Type: trace.RecProcState, TS: 50, App: 1, State: trace.StateBackground},
	}
	for i := range recs {
		if err := c.Send(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// The records travel through the shard queue asynchronously; poll the
	// accepted-record counter rather than sleeping blind.
	deadline := time.Now().Add(5 * time.Second)
	for s.counters.records.Load() < int64(len(recs)) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d records applied", s.counters.records.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	base := "http://" + s.AdminAddr().String()
	var res tsq.Result
	if code := adminGet(t, base+"/query?from=0&to=1000", &res); code != http.StatusOK {
		t.Fatalf("/query: %d", code)
	}
	if res.Records != int64(len(recs)) {
		t.Fatalf("live tail query saw %d records, want %d", res.Records, len(recs))
	}
	// No network records were sent, so no energy was attributed and the
	// app table is rightly empty — but the device itself must be visible.
	if res.Devices != 1 {
		t.Fatalf("live tail query saw %d devices, want 1", res.Devices)
	}
	if len(res.Apps) != 0 {
		t.Fatalf("no-traffic live tail grew app rows: %+v", res.Apps)
	}
}

// TestQueryEndpointErrors: disabled store, bad parameters.
func TestQueryEndpointErrors(t *testing.T) {
	s := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1})
	defer s.Shutdown(context.Background()) //nolint:errcheck
	base := "http://" + s.AdminAddr().String()
	if code := adminGet(t, base+"/query?from=0&to=10", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("query without segment dir: %d, want 503", code)
	}

	dir := t.TempDir()
	s2 := startServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1, SegmentDir: dir})
	defer s2.Shutdown(context.Background()) //nolint:errcheck
	base2 := "http://" + s2.AdminAddr().String()
	for _, raw := range []string{"from=20&to=10", "frm=0", "window=1us&from=0&to=10"} {
		if code := adminGet(t, base2+"/query?"+raw, nil); code != http.StatusBadRequest {
			t.Fatalf("query %q: %d, want 400", raw, code)
		}
	}
	// A well-formed query over an empty store succeeds with zero rows.
	var res tsq.Result
	if code := adminGet(t, base2+"/query?from=0&to=10", &res); code != http.StatusOK {
		t.Fatalf("empty-store query: %d", code)
	}
	if res.Records != 0 || len(res.Apps) != 0 {
		t.Fatalf("empty-store query returned rows: %+v", res)
	}
}

// TestSegmentRollAndReseed: a tiny SegmentMaxBytes forces mid-stream
// rolls; a restarted server continues file numbering instead of
// clobbering sealed history.
func TestSegmentRollAndReseed(t *testing.T) {
	dir := t.TempDir()
	dt := synthgen.GenerateDevice(synthgen.Small(1, 2), 0)

	s := startServer(t, Config{
		AdminAddr: "127.0.0.1:0", Shards: 1, BatchSize: 64,
		SegmentDir: dir, SegmentMaxBytes: 32 << 10,
	})
	streamTrace(t, s.Addr().String(), dt)
	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	first := segmentFiles(t, dir)
	if len(first) < 2 {
		t.Fatalf("expected multiple rolled segments, got %v", first)
	}
	// All sealed (drain seals): each file must carry a footer index.
	for _, name := range first {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := f.Stat()
		_, _, _, ok, err := trace.ReadBlockIndex(f, st.Size())
		f.Close()
		if err != nil || !ok {
			t.Fatalf("%s not sealed (ok=%v err=%v)", name, ok, err)
		}
	}

	// Restart into the same dir and stream a second device: numbering must
	// extend, not overwrite.
	s2 := startServer(t, Config{
		AdminAddr: "127.0.0.1:0", Shards: 1, BatchSize: 64,
		SegmentDir: dir, SegmentMaxBytes: 32 << 10,
	})
	dt2 := synthgen.GenerateDevice(synthgen.Small(2, 2), 1)
	streamTrace(t, s2.Addr().String(), dt2)
	if _, err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := segmentFiles(t, dir)
	if len(second) <= len(first) {
		t.Fatalf("restart produced no new segments: %v -> %v", first, second)
	}
	for _, name := range first {
		found := false
		for _, n := range second {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("restart lost sealed segment %s", name)
		}
	}
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), segmentExt) {
			names = append(names, ent.Name())
		}
	}
	return names
}

func addrOf(s *Server) string { return s.Addr().String() }

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v) //nolint:errcheck
			return v
		}
	}
	return 0
}

// TestSanitizeSegmentName: injective, filesystem-safe, no dotfiles.
func TestSanitizeSegmentName(t *testing.T) {
	cases := map[string]string{
		"u01":        "u01",
		"dev.a":      "dev.a",
		".hidden":    "%2Ehidden",
		"a/b":        "a%2Fb",
		"a b":        "a%20b",
		"per%cent":   "per%25cent",
		"UPPER_low-": "UPPER_low-",
	}
	for in, want := range cases {
		if got := sanitizeSegmentName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("x", 4096)
	s := sanitizeSegmentName(long)
	if len(s) > 128 || s == sanitizeSegmentName(long+"y") {
		t.Fatalf("long-name fallback broken: %q", s)
	}
}
