package ingest

import (
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/obs"
	"netenergy/internal/trace"
	"netenergy/internal/tsq"
)

// LiveHeadline is the admin /headline document: the paper's headline
// statistics evaluated over everything the server has ingested so far.
type LiveHeadline struct {
	// NodeID attributes the headline to one cluster member (empty outside
	// cluster mode; the aggregator stamps its merged document "fleet").
	NodeID  string `json:"node_id,omitempty"`
	Devices int    `json:"devices"`
	Records int64  `json:"records"`

	TotalEnergyJ float64 `json:"total_energy_j"`
	IdleEnergyJ  float64 `json:"idle_energy_j"`

	// BackgroundFraction is the share of attributed energy consumed in
	// background states (paper: 0.84).
	BackgroundFraction  float64 `json:"background_fraction"`
	PerceptibleFraction float64 `json:"perceptible_fraction"`
	ServiceFraction     float64 `json:"service_fraction"`

	// FirstMinuteFraction is the §4.1 criterion at the 80% threshold
	// (paper: 0.84).
	FirstMinuteFraction float64 `json:"first_minute_fraction"`

	// Fig6 aggregates.
	Fig6FirstMinute float64 `json:"fig6_first_minute"`
	Fig6Spike5m     float64 `json:"fig6_spike_5m"`
	Fig6Spike10m    float64 `json:"fig6_spike_10m"`

	// ScreenOffByteShare is the fraction of bytes moved with the screen
	// off (paper §4: "more than half").
	ScreenOffByteShare float64 `json:"screen_off_byte_share"`

	DecodeErrors int `json:"decode_errors"`

	SpanStartUS int64 `json:"span_start_us"`
	SpanEndUS   int64 `json:"span_end_us"`
}

// HeadlineOf evaluates the live headline over a fleet StreamResult.
func HeadlineOf(res *analysis.StreamResult, devices int, records int64) LiveHeadline {
	f6 := res.SinceForeground()
	h := LiveHeadline{
		Devices:             devices,
		Records:             records,
		TotalEnergyJ:        res.Ledger.Total,
		IdleEnergyJ:         res.Ledger.IdleEnergy,
		BackgroundFraction:  res.Ledger.BackgroundFraction(),
		FirstMinuteFraction: res.FirstMinuteFraction(0.8),
		Fig6FirstMinute:     f6.FirstMinute,
		Fig6Spike5m:         f6.Spike5m,
		Fig6Spike10m:        f6.Spike10m,
		DecodeErrors:        res.DecodeErrors,
		SpanStartUS:         int64(res.Span[0]),
		SpanEndUS:           int64(res.Span[1]),
	}
	h.PerceptibleFraction = res.Ledger.StateFraction(trace.StatePerceptible)
	h.ServiceFraction = res.Ledger.StateFraction(trace.StateService)
	if total := res.OffBytes + res.OnBytes; total > 0 {
		h.ScreenOffByteShare = float64(res.OffBytes) / float64(total)
	}
	return h
}

// Headline evaluates the live headline over the current Snapshot.
func (s *Server) Headline() LiveHeadline {
	h := HeadlineOf(s.Snapshot(), s.devices.len(), s.counters.records.Load())
	h.NodeID = s.cfg.NodeID
	return h
}

// adminMux serves the observability surface:
//
//	GET  /healthz           -> 200 "ok"
//	GET  /metrics           -> Prometheus text exposition of every counter,
//	                           gauge and histogram (scrape this)
//	GET  /events            -> recent structured events as JSON
//	                           (?level=warn&n=50 to filter and trim)
//	GET  /stats             -> Stats JSON (add ?devices=1 for per-device counters)
//	GET  /headline          -> LiveHeadline JSON
//	GET  /device?id=<dev>   -> DeviceStats JSON (400 without id, 404 unknown)
//	POST /checkpoint        -> force a checkpoint now (405 on GET, 503 when
//	                           durability is off or the server is draining)
//	GET  /snapshot          -> binary fleet StreamResult (the aggregator's
//	                           pull surface), with X-Node-ID, X-Devices,
//	                           X-Records and X-Snapshot-CRC32 headers
//	POST /transfer          -> adopt a checkpoint handoff; the body is
//	                           complete checkpoint-file bytes, CRC-verified
//	                           before any state changes (?skip_retired=1
//	                           skips the legacy retired aggregate so only
//	                           one survivor merges it; retirement-ledger
//	                           entries are ownership-routed per device and
//	                           unaffected); replies TransferResult
//	POST /fence             -> FenceRequest JSON; if the incarnation names
//	                           this process it archives its checkpoint dir
//	                           behind a tombstone and stops serving streams
//	                           (the rejoin-after-handoff fence); replies
//	                           FenceResponse either way
//	/debug/pprof/*          -> net/http/pprof handlers, only with
//	                           Config.EnablePprof (ingestd -pprof)
func (s *Server) adminMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.counters.reg.WriteText(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if n := r.URL.Query().Get("n"); n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			max = v
		}
		min := obs.ParseLevel(r.URL.Query().Get("level"))
		writeJSON(w, struct {
			Total  uint64      `json:"total"`
			Events []obs.Event `json:"events"`
		}{s.counters.events.Total(), s.counters.events.Recent(max, min)})
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats(r.URL.Query().Get("devices") != ""))
	})
	mux.HandleFunc("/headline", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Headline())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.SegmentDir == "" {
			http.Error(w, "segment store disabled (start with -segment-dir)", http.StatusServiceUnavailable)
			return
		}
		q, err := tsq.ParseQuery(r.URL.Query(), time.Now())
		if err != nil {
			s.counters.queryErrors.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Flush the live tail so the scan sees every record applied before
		// this request arrived; sync errors only cost tail freshness (the
		// affected device's persistence is already disabled and counted).
		s.SyncSegments() //nolint:errcheck // counted in segErrors
		res, err := tsq.Engine{Opts: s.cfg.Opts}.QueryDir(s.cfg.SegmentDir, q)
		if err != nil {
			s.counters.queryErrors.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		res.Node = s.cfg.NodeID
		s.counters.queries.Add(1)
		s.counters.queryBlocksSkipped.Add(int64(res.Scan.BlocksSkipped))
		writeJSON(w, res)
	})
	mux.HandleFunc("/device", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		d := s.devices.lookup(id)
		if d == nil {
			http.Error(w, "unknown device", http.StatusNotFound)
			return
		}
		writeJSON(w, d.snapshot())
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := s.SaveCheckpoint(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, s.Stats(false).Checkpoint)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		b := s.Snapshot().AppendBinary(nil)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Node-ID", s.cfg.NodeID)
		if s.Fenced() {
			w.Header().Set("X-Fenced", "1")
		}
		w.Header().Set("X-Devices", strconv.Itoa(s.devices.len()))
		w.Header().Set("X-Records", strconv.FormatInt(s.counters.records.Load(), 10))
		w.Header().Set("X-Snapshot-CRC32", strconv.FormatUint(uint64(crc32.ChecksumIEEE(b)), 10))
		w.Write(b) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/transfer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTransferBytes))
		if err != nil {
			s.counters.transferErrors.Add(1)
			http.Error(w, "transfer body: "+err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := checkpoint.DecodeFile(body)
		if err != nil {
			// Corrupt handoff bytes sever the whole transfer: no state was
			// touched, the sender retries or escalates.
			s.counters.transferErrors.Add(1)
			s.counters.events.Logf(obs.LevelError, "transfer rejected: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.RestoreTransfer(snap, r.URL.Query().Get("skip_retired") == "")
		if err != nil {
			s.counters.transferErrors.Add(1)
			s.counters.events.Logf(obs.LevelError, "transfer failed: %v", err)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/fence", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req FenceRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
			http.Error(w, "fence body: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, s.HandleFence(req))
	})
	return mux
}

// maxTransferBytes bounds a POST /transfer body — matches the checkpoint
// store's own payload cap plus header slack.
const maxTransferBytes = checkpoint.MaxPayload + 64

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
