package ingest

import (
	"fmt"
	"testing"
)

func ringDevices(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dev-%04d", i)
	}
	return out
}

// TestNodeRingDeterministic: placement must depend only on the SET of node
// names — input order and duplicates are irrelevant, so every holder of the
// same member list (client, server, aggregator) agrees on every assignment.
func TestNodeRingDeterministic(t *testing.T) {
	a := NewNodeRing([]string{"h1:9009", "h2:9009", "h3:9009"})
	b := NewNodeRing([]string{"h3:9009", "h1:9009", "h2:9009", "h1:9009", ""})
	if got, want := fmt.Sprint(a.Nodes()), fmt.Sprint(b.Nodes()); got != want {
		t.Fatalf("node sets differ: %s vs %s", got, want)
	}
	for _, dev := range ringDevices(500) {
		if a.Owner(dev) != b.Owner(dev) {
			t.Fatalf("device %s: owner %s vs %s", dev, a.Owner(dev), b.Owner(dev))
		}
	}
}

// TestNodeRingRelocation: removing one node must relocate exactly that
// node's devices and nothing else — the property the checkpoint handoff
// protocol relies on (survivors keep their own devices, the dead node's
// devices land on their ring successors).
func TestNodeRingRelocation(t *testing.T) {
	nodes := []string{"h1:9009", "h2:9009", "h3:9009", "h4:9009", "h5:9009"}
	full := NewNodeRing(nodes)
	shrunk := NewNodeRing(nodes[1:]) // h1 removed

	devs := ringDevices(2000)
	var owned, moved int
	for _, dev := range devs {
		before, after := full.Owner(dev), shrunk.Owner(dev)
		switch {
		case before == nodes[0]:
			owned++
			if after == nodes[0] {
				t.Fatalf("device %s still owned by removed node", dev)
			}
		case before != after:
			moved++
			t.Errorf("device %s moved %s -> %s without its owner dying", dev, before, after)
		}
	}
	if moved != 0 {
		t.Fatalf("%d devices relocated off surviving nodes", moved)
	}
	// The vnode key scheme (name + "-" + v, inherited bit-for-bit from the
	// legacy shard ring) clusters a node's low-v vnodes, so shares are far
	// from the ideal 1/5; only guard against degenerate placement where a
	// node owns nothing or nearly everything.
	if owned < len(devs)/100 || owned > len(devs)*3/5 {
		t.Errorf("removed node owned %d/%d devices — placement degenerate", owned, len(devs))
	}
}

// TestNodeRingPrefer: the preference order must start at the owner, cover
// every node exactly once, and its second entry must be exactly the node
// that inherits the device when the owner is removed — that is what makes
// the client's failover walk converge with the server-side ring.
func TestNodeRingPrefer(t *testing.T) {
	nodes := []string{"h1:9009", "h2:9009", "h3:9009", "h4:9009"}
	r := NewNodeRing(nodes)
	for _, dev := range ringDevices(300) {
		pref := r.Prefer(dev)
		if len(pref) != len(nodes) {
			t.Fatalf("device %s: prefer has %d entries, want %d", dev, len(pref), len(nodes))
		}
		if pref[0] != r.Owner(dev) {
			t.Fatalf("device %s: prefer[0] = %s, owner = %s", dev, pref[0], r.Owner(dev))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("device %s: node %s repeated in prefer order", dev, n)
			}
			seen[n] = true
		}
		// Remove the owner: the new owner must be the old second choice.
		var rest []string
		for _, n := range nodes {
			if n != pref[0] {
				rest = append(rest, n)
			}
		}
		if got := NewNodeRing(rest).Owner(dev); got != pref[1] {
			t.Fatalf("device %s: inheritor %s, prefer[1] %s", dev, got, pref[1])
		}
	}
}

func TestNodeRingEmpty(t *testing.T) {
	r := NewNodeRing(nil)
	if got := r.Owner("dev"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := r.Prefer("dev"); got != nil {
		t.Fatalf("empty ring prefer = %v", got)
	}
}

// TestShardRingMatchesNodeRing: the per-process shard ring is the NodeRing
// under synthetic shard names; the legacy vnode keys must be preserved so
// checkpointed placements survive the refactor.
func TestShardRingMatchesNodeRing(t *testing.T) {
	names := []string{"shard-0", "shard-1", "shard-2"}
	sr := newRing(3)
	nr := NewNodeRing(names)
	for _, dev := range ringDevices(500) {
		want := fmt.Sprintf("shard-%d", sr.shard(dev))
		if got := nr.Owner(dev); got != want {
			t.Fatalf("device %s: shard ring %s, node ring %s", dev, want, got)
		}
	}
}
