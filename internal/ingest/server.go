package ingest

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// Config tunes an ingest Server. Zero values select production defaults.
type Config struct {
	// Addr is the TCP listen address for device streams (":9009").
	Addr string
	// AdminAddr is the HTTP admin listen address ("" disables admin).
	AdminAddr string
	// Shards is the worker-pool width (default: 8).
	Shards int
	// QueueDepth bounds each shard's request queue (default: 256). A full
	// queue blocks the connection handler — backpressure, not drops.
	QueueDepth int
	// BatchSize is how many records a connection handler accumulates
	// before handing off to a shard (default: 128).
	BatchSize int
	// ReadTimeout is the per-frame read deadline (default: 60s). A device
	// that goes silent longer is disconnected and finalised.
	ReadTimeout time.Duration
	// Opts is the energy accounting configuration (default:
	// energy.DefaultOptions with KeepPackets off).
	Opts energy.Options
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.Opts.Radio.Name == "" {
		c.Opts = energy.DefaultOptions()
		c.Opts.KeepPackets = false
	}
	return c
}

// Server is the fleet-ingest daemon: a TCP accept loop, per-connection
// frame decoders, and a consistent-hash sharded pool of analysis workers.
type Server struct {
	cfg   Config
	ring  *ring
	shard []*shard

	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server

	counters counters
	devices  *deviceRegistry
	rates    rateTracker
	started  time.Time

	mu       sync.RWMutex // guards conns, drain, chClosed, final
	conns    map[net.Conn]struct{}
	drain    bool
	chClosed bool
	final    *analysis.StreamResult
	handler sync.WaitGroup
	accept  sync.WaitGroup
}

// NewServer builds a Server; Start brings up the listeners.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		ring:    newRing(cfg.Shards),
		devices: newDeviceRegistry(),
		conns:   map[net.Conn]struct{}{},
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shard = append(s.shard, newShard(i, cfg.QueueDepth, cfg.Opts))
	}
	return s
}

// Start binds the listeners and launches the shard workers, the accept
// loop and (if configured) the admin endpoint. It returns once the server
// is accepting.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.AdminAddr != "" {
		aln, err := net.Listen("tcp", s.cfg.AdminAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.adminLn = aln
		s.admin = &http.Server{Handler: s.adminMux()}
		go s.admin.Serve(aln) //nolint:errcheck // closed via Shutdown
	}
	s.started = time.Now()
	for _, sh := range s.shard {
		go sh.run()
	}
	s.accept.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound stream-listener address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AdminAddr returns the bound admin address, or nil when disabled.
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.accept.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		if s.drain {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handler.Add(1)
		s.mu.Unlock()
		s.counters.connsTotal.Add(1)
		s.counters.connsActive.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) forgetConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleConn owns one device connection: hello, then the frame loop. Every
// decoded record is copied into the current batch; batches are enqueued to
// the device's shard; the partial batch and the device-close marker are
// flushed when the connection ends for any reason, so everything the
// handler accepted reaches the analyzer.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.forgetConn(conn)
		s.counters.connsActive.Add(-1)
		s.handler.Done()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	device, start, err := readHello(br)
	if err != nil {
		s.counters.helloErrors.Add(1)
		return
	}
	dev := s.devices.get(device)
	dev.conns.Add(1)

	sh := s.shard[s.ring.shard(device)]
	dec := trace.NewRecordDecoder(start)
	fr := newFrameReader(br)
	batch := make([]trace.Record, 0, s.cfg.BatchSize)

	flush := func() {
		if len(batch) == 0 {
			return
		}
		sh.ch <- shardReq{batch: &recordBatch{device: device, recs: batch}}
		batch = make([]trace.Record, 0, s.cfg.BatchSize)
	}
	defer func() {
		flush()
		sh.ch <- shardReq{closeDevice: device}
	}()

	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		body, err := fr.next()
		switch {
		case err == nil:
		case errors.Is(err, ErrFrameCRC):
			s.counters.crcErrors.Add(1)
			dev.crcErrors.Add(1)
			continue
		case errors.Is(err, io.EOF):
			return
		default:
			// Truncated/oversized frame or a closed socket: the framing
			// cannot be trusted past this point.
			s.counters.frameErrors.Add(1)
			return
		}
		s.counters.frames.Add(1)
		rec, err := dec.Decode(body)
		if err != nil {
			s.counters.decodeErrors.Add(1)
			dev.decodeErrors.Add(1)
			continue
		}
		cp := *rec
		if len(rec.Payload) > 0 {
			cp.Payload = append([]byte(nil), rec.Payload...)
		}
		batch = append(batch, cp)
		s.counters.records.Add(1)
		s.counters.bytes.Add(int64(len(body)))
		dev.records.Add(1)
		dev.bytes.Add(int64(len(body)))
		if len(batch) >= s.cfg.BatchSize {
			flush()
		}
	}
}

// Snapshot returns the live fleet-wide StreamResult: every shard's retired
// aggregate merged with a tail-settled snapshot of every in-flight device
// stream. After Shutdown it returns the final drained result.
func (s *Server) Snapshot() *analysis.StreamResult {
	s.mu.RLock()
	if s.final != nil {
		defer s.mu.RUnlock()
		return s.final.Clone()
	}
	if s.chClosed {
		// Drain in progress: the queues are closed but the final merge is
		// not published yet. Wait for the shards and read their retired
		// aggregates directly (the done-channel close orders the reads).
		s.mu.RUnlock()
		agg := analysis.NewStreamResult("fleet")
		for _, sh := range s.shard {
			<-sh.done
			agg.Merge(sh.retired)
		}
		return agg
	}
	// Enqueue all queries while holding the read lock (Shutdown closes the
	// shard channels only under the write lock, after handlers exit); the
	// replies are safe to collect outside it — a closing shard drains its
	// queue, queries included, before exiting.
	replies := make([]chan *analysis.StreamResult, len(s.shard))
	for i, sh := range s.shard {
		c := make(chan *analysis.StreamResult, 1)
		replies[i] = c
		sh.ch <- shardReq{query: c}
	}
	s.mu.RUnlock()

	agg := analysis.NewStreamResult("fleet")
	for _, c := range replies {
		agg.Merge(<-c)
	}
	return agg
}

// Stats assembles the observability snapshot.
func (s *Server) Stats(perDevice bool) Stats {
	now := time.Now()
	records, bytes := s.counters.records.Load(), s.counters.bytes.Load()
	rps, bps := s.rates.rates(records, bytes, now)
	st := Stats{
		UptimeSec:    now.Sub(s.started).Seconds(),
		ConnsActive:  s.counters.connsActive.Load(),
		ConnsTotal:   s.counters.connsTotal.Load(),
		Devices:      s.devices.len(),
		Frames:       s.counters.frames.Load(),
		Records:      records,
		Bytes:        bytes,
		CRCErrors:    s.counters.crcErrors.Load(),
		DecodeErrors: s.counters.decodeErrors.Load(),
		FrameErrors:  s.counters.frameErrors.Load(),
		HelloErrors:  s.counters.helloErrors.Load(),
		RecordsPerSec: rps,
		BytesPerSec:   bps,
	}
	for _, sh := range s.shard {
		st.ShardDepths = append(st.ShardDepths, sh.depth())
	}
	if perDevice {
		st.PerDevice = s.devices.snapshot()
	}
	return st
}

// DeviceRecords returns the number of records accepted for one device —
// the server-side acknowledgement count a drained headline corresponds to.
func (s *Server) DeviceRecords(device string) int64 {
	return s.devices.get(device).records.Load()
}

// Shutdown drains the server: stop accepting, sever every connection (the
// handlers flush their partial batches and device-close markers on the way
// out), close the shard queues and wait for them to drain and finalise all
// live streams. The returned StreamResult is the final fleet aggregate over
// every record the server accepted; it remains available via Snapshot.
func (s *Server) Shutdown(ctx context.Context) (*analysis.StreamResult, error) {
	s.mu.Lock()
	if s.drain {
		final := s.final
		s.mu.Unlock()
		if final == nil {
			return nil, fmt.Errorf("ingest: shutdown already in progress")
		}
		return final.Clone(), nil
	}
	s.drain = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()

	s.accept.Wait()
	if err := waitCtx(ctx, &s.handler); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.chClosed = true
	for _, sh := range s.shard {
		close(sh.ch)
	}
	s.mu.Unlock()
	agg := analysis.NewStreamResult("fleet")
	for _, sh := range s.shard {
		select {
		case <-sh.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		agg.Merge(sh.retired)
	}

	s.mu.Lock()
	s.final = agg
	s.mu.Unlock()

	if s.admin != nil {
		s.admin.Shutdown(ctx) //nolint:errcheck // best effort
	}
	return agg.Clone(), nil
}

// waitCtx waits on a WaitGroup, bounded by the context.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
