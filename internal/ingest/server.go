package ingest

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/obs"
	"netenergy/internal/trace"
)

// Config tunes an ingest Server. Zero values select production defaults.
type Config struct {
	// Addr is the TCP listen address for device streams (":9009").
	Addr string
	// AdminAddr is the HTTP admin listen address ("" disables admin).
	AdminAddr string
	// Shards is the worker-pool width (default: 8).
	Shards int
	// QueueDepth bounds each shard's request queue (default: 256). A full
	// queue blocks the connection handler — backpressure, not drops.
	QueueDepth int
	// BatchSize is how many records a connection handler accumulates
	// before handing off to a shard (default: 128).
	BatchSize int
	// ReadTimeout is the per-frame read deadline (default: 60s). A device
	// that goes silent longer is disconnected; its stream stays live for
	// resume.
	ReadTimeout time.Duration
	// WriteTimeout bounds handshake/FIN acknowledgement writes (default: 10s).
	WriteTimeout time.Duration

	// CheckpointDir enables crash-safe durability: shard state is
	// persisted there periodically and replayed on the next Start. Empty
	// disables checkpointing (the pre-durability behaviour).
	CheckpointDir string
	// CheckpointInterval is the persistence cadence (default: 10s). A
	// crash loses at most this much progress — clients retransmit it.
	CheckpointInterval time.Duration
	// DurableFIN, with checkpointing enabled, makes a FIN acknowledgement
	// mean durable: the session's final records are checkpointed (batched
	// across concurrently-finishing sessions, one fsync per batch) before
	// the delivery receipt is written. Closes the completed-session loss
	// window — a crash after a FIN ack can no longer lose that stream —
	// at the cost of one group-commit checkpoint latency per FIN.
	DurableFIN bool

	// SegmentDir enables the on-disk query history: every accepted record
	// is also appended to per-device METR-3 segment files there, served by
	// the admin GET /query endpoint (and readable offline with cmd/tsq).
	// Empty disables segments and /query answers 503.
	SegmentDir string
	// SegmentMaxBytes rolls a device's segment to a new file once it
	// exceeds this size (default: 64 MiB). Sealed files carry the footer
	// seek index that makes query block-pushdown work.
	SegmentMaxBytes int64

	// RateLimit, when positive, caps per-device connection admissions to
	// this many per second (token bucket of RateBurst). Excess handshakes
	// are refused with an explicit throttle ack and retry-after — load is
	// shed deterministically at the cheapest point, before any decoding.
	RateLimit float64
	// RateBurst is the token-bucket depth (default: 3 when RateLimit > 0).
	RateBurst int

	// EnablePprof mounts net/http/pprof under the admin server's
	// /debug/pprof/ prefix. Off by default: profiling endpoints can stall
	// the process and leak internals, so they are opt-in (ingestd -pprof).
	EnablePprof bool

	// NodeID names this node in a cluster; it is echoed in /stats,
	// /headline and /snapshot so aggregator merges are attributable.
	// Empty outside cluster mode.
	NodeID string

	// Route, when set, enables cluster mode: it maps a device to its
	// owning node's stream address per the current membership view. A
	// handshake for a device this node does not own (self == false) is
	// answered with a redirect ack carrying addr instead of being
	// admitted — the wire-level mechanism by which clients learn of
	// reassignment. The cluster package supplies this from its live ring;
	// the hook keeps ingest free of any dependency on cluster.
	Route func(device string) (addr string, self bool)

	// ClusterEpoch, when set, supplies the current cluster epoch for the
	// fence stamped into every checkpoint (the prober's flip counter). Nil
	// (standalone mode) stamps epoch 0.
	ClusterEpoch func() uint64

	// OnFenced is invoked (once, from its own goroutine) when the server
	// fences itself: its durable state was already shipped to survivors, so
	// it has archived its checkpoint dir and stopped serving streams. The
	// daemon typically logs loudly and waits for the operator/supervisor.
	OnFenced func(reason string)

	// Opts is the energy accounting configuration (default:
	// energy.DefaultOptions with KeepPackets off).
	Opts energy.Options
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 10 * time.Second
	}
	if c.SegmentMaxBytes <= 0 {
		c.SegmentMaxBytes = 64 << 20
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = 3
	}
	if c.Opts.Radio.Name == "" {
		c.Opts = energy.DefaultOptions()
		c.Opts.KeepPackets = false
	}
	return c
}

// Server is the fleet-ingest daemon: a TCP accept loop, per-connection
// frame decoders, and a consistent-hash sharded pool of analysis workers,
// optionally checkpointed to disk for crash recovery.
type Server struct {
	cfg   Config
	ring  *ring
	shard []*shard

	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server

	counters *counters
	devices  *deviceRegistry
	rates    rateTracker
	started  time.Time

	ckpt     *checkpoint.Store
	ckptMu   sync.Mutex // serializes Save calls (ticker vs admin POST)
	ckptStop chan struct{}
	ckptDone chan struct{}
	ckptOnce sync.Once

	// incarnation uniquely names this process lifetime; it is stamped into
	// every checkpoint's fence. restoredFence/restoredGen remember the fence
	// of the checkpoint this process restored at Start, so an aggregator
	// fence probe can recognize state that was restored from an
	// already-shipped file even when the tombstone write itself was lost.
	incarnation   string
	restoredFence checkpoint.Fence
	restoredGen   uint64
	fenced        atomic.Bool
	finb          finBatcher

	// retiredMu guards mergedRetired: the content CRCs of retired
	// aggregates this node has already merged via RestoreTransfer. A drain
	// handoff and an aggregator death-handoff can legitimately ship the
	// same checkpoint file; the per-device positional rule makes that
	// harmless, but the retired blob is a blind merge, so re-delivery must
	// be deduplicated by content or finalized energy double-counts.
	retiredMu     sync.Mutex
	mergedRetired map[uint32]struct{}

	mu       sync.RWMutex // guards conns, drain, chClosed, final
	conns    map[net.Conn]struct{}
	drain    bool
	chClosed bool
	final    *analysis.StreamResult
	handler  sync.WaitGroup
	accept   sync.WaitGroup
}

// NewServer builds a Server; Start brings up the listeners.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	node := cfg.NodeID
	if node == "" {
		node = "node"
	}
	s := &Server{
		cfg:      cfg,
		ring:     newRing(cfg.Shards),
		counters: newCounters(),
		devices:  newDeviceRegistry(),
		conns:    map[net.Conn]struct{}{},
		// PID + wall clock make the incarnation unique across restarts of
		// the same node ID; it only ever needs to be distinct, not ordered.
		incarnation: fmt.Sprintf("%s.%d.%d", node, os.Getpid(), time.Now().UnixNano()),
	}
	var segSeqs map[string]int
	if cfg.SegmentDir != "" {
		var err error
		// Persistence is best-effort: an unusable segment dir disables
		// segments (and /query) but never blocks ingest — clearing
		// SegmentDir below abandons the whole subsystem, not just one item.
		//repolint:allow severerr — clearing SegmentDir abandons the segment subsystem entirely; ingest must start regardless
		if segSeqs, err = seedSegmentSeqs(cfg.SegmentDir); err != nil {
			s.counters.events.Logf(obs.LevelError, "segment dir unusable, segments disabled: %v", err)
			s.cfg.SegmentDir = ""
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		var seg *segmentStore
		if s.cfg.SegmentDir != "" {
			seg = newSegmentStore(s.cfg.SegmentDir, s.cfg.SegmentMaxBytes, segSeqs, s.counters)
		}
		s.shard = append(s.shard, newShard(i, cfg.QueueDepth, cfg.Opts, s.counters, s.devices, seg))
	}
	// Scrape-time gauges over state that already exists elsewhere.
	reg := s.counters.reg
	reg.GaugeFunc("ingest_devices", "devices ever seen", func() float64 {
		return float64(s.devices.len())
	})
	reg.GaugeFunc("ingest_uptime_seconds", "seconds since Start", func() float64 {
		if s.started.IsZero() {
			return 0
		}
		return time.Since(s.started).Seconds()
	})
	for i, sh := range s.shard {
		sh := sh
		reg.GaugeFunc(fmt.Sprintf("ingest_shard_queue_depth{shard=%q}", strconv.Itoa(i)),
			"instantaneous shard queue occupancy", func() float64 { return float64(sh.depth()) })
	}
	return s
}

// Metrics returns the server's metric registry — the same values /metrics
// exposes, for in-process consumers (tests, embedding daemons).
func (s *Server) Metrics() *obs.Registry { return s.counters.reg }

// Events returns the server's structured event log.
func (s *Server) Events() *obs.EventLog { return s.counters.events }

// Start binds the listeners, recovers from the latest valid checkpoint if
// durability is enabled, and launches the shard workers, the accept loop,
// the checkpoint loop and (if configured) the admin endpoint. It returns
// once the server is accepting.
func (s *Server) Start() error {
	if s.cfg.CheckpointDir != "" {
		st, err := checkpoint.Open(s.cfg.CheckpointDir)
		if err != nil {
			return fmt.Errorf("ingest: open checkpoint dir: %w", err)
		}
		s.ckpt = st

		// Rejoin fencing, disk side: a tombstone covering the newest
		// generation means this state was already shipped to survivors —
		// restoring it would double-count every record it holds. Archive and
		// start clean instead of relying on an operator wiping the dir.
		tomb, err := checkpoint.LoadTombstone(s.cfg.CheckpointDir)
		if err != nil {
			return fmt.Errorf("ingest: read handoff tombstone: %w", err)
		}
		if tomb != nil {
			if tomb.Generation >= st.Generation() {
				sub, err := st.ArchiveShipped(tomb)
				if err != nil {
					return fmt.Errorf("ingest: archive shipped checkpoints: %w", err)
				}
				s.counters.fenceArchives.Add(1)
				s.counters.events.Logf(obs.LevelInfo,
					"checkpoint dir was handed off (tombstone gen %d, epoch %d): archived to %s, starting clean",
					tomb.Generation, tomb.Epoch, sub)
			} else {
				// Generations newer than the shipped one exist: the previous
				// process kept checkpointing after the handoff (the residual
				// race DESIGN.md §10 documents). The newer state is kept —
				// dropping it would lose records that were never shipped —
				// but the shipped prefix may double-count fleet-wide.
				s.counters.events.Logf(obs.LevelError,
					"stale handoff tombstone (shipped gen %d < newest gen %d): keeping newer unshipped state; the shipped prefix may be double-counted",
					tomb.Generation, st.Generation())
				os.Remove(filepath.Join(s.cfg.CheckpointDir, checkpoint.TombstoneName)) //nolint:errcheck // best effort
			}
		}

		snap, gen, err := st.LoadLatest(s.validateSnapshot)
		if err != nil {
			return fmt.Errorf("ingest: load checkpoint: %w", err)
		}
		if snap != nil {
			if err := s.restore(snap); err != nil {
				return fmt.Errorf("ingest: restore checkpoint gen %d: %w", gen, err)
			}
			s.restoredFence = snap.Fence
			s.restoredGen = gen
			s.counters.ckptGen.Set(int64(gen))
			s.counters.ckptUnixNano.Set(time.Now().UnixNano())
			s.counters.events.Logf(obs.LevelInfo, "recovered checkpoint generation %d (%d devices)", gen, len(snap.Devices))
		}
	}

	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.AdminAddr != "" {
		aln, err := net.Listen("tcp", s.cfg.AdminAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.adminLn = aln
		s.admin = &http.Server{Handler: s.adminMux()}
		//repolint:allow goexit — external http.Server body; Shutdown/Kill close it via s.admin.Shutdown/Close, which makes Serve return
		go s.admin.Serve(aln) //nolint:errcheck // closed via Shutdown
	}
	s.started = time.Now()
	for _, sh := range s.shard {
		go sh.run()
	}
	if s.ckpt != nil {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	s.accept.Add(1)
	go s.acceptLoop()
	return nil
}

// validateSnapshot deep-decodes every opaque blob in a candidate checkpoint
// so a structurally-valid file with undecodable analysis state falls back
// to the previous generation instead of poisoning recovery.
func (s *Server) validateSnapshot(snap *checkpoint.Snapshot) error {
	for i := range snap.Devices {
		d := &snap.Devices[i]
		if d.Seq < 0 {
			return fmt.Errorf("device %q: negative seq", d.Device)
		}
		if d.Acc != nil {
			if _, err := analysis.RestoreStreamAccumulator(d.Acc, s.cfg.Opts); err != nil {
				return fmt.Errorf("device %q: %w", d.Device, err)
			}
		}
	}
	if snap.Retired != nil {
		if _, err := analysis.DecodeStreamResult(snap.Retired); err != nil {
			return fmt.Errorf("retired aggregate: %w", err)
		}
	}
	for i := range snap.Ledger {
		r := &snap.Ledger[i]
		if r.Seq < 0 {
			return fmt.Errorf("retired device %q: negative seq", r.Device)
		}
		if _, err := analysis.DecodeStreamResult(r.Blob); err != nil {
			return fmt.Errorf("retired device %q: %w", r.Device, err)
		}
	}
	return nil
}

// restore rebuilds shard state from a checkpoint. It runs before the shard
// workers start, so it may touch shard maps directly. Devices are placed by
// THIS server's ring — the shard count may differ from the process that
// wrote the checkpoint — and the retired aggregate (placement-irrelevant:
// it is only ever merged) goes to shard 0. Counters are seeded from the
// sequence numbers so the observability surface survives the restart.
func (s *Server) restore(snap *checkpoint.Snapshot) error {
	for i := range snap.Devices {
		d := &snap.Devices[i]
		sh := s.shard[s.ring.shard(d.Device)]
		sh.seqs[d.Device] = d.Seq
		if d.Acc != nil {
			acc, err := analysis.RestoreStreamAccumulator(d.Acc, s.cfg.Opts)
			if err != nil {
				return err
			}
			sh.live[d.Device] = acc
		}
		s.counters.records.Add(d.Seq)
		s.devices.get(d.Device).records.Add(d.Seq)
	}
	for i := range snap.Ledger {
		r := &snap.Ledger[i]
		res, err := analysis.DecodeStreamResult(r.Blob)
		if err != nil {
			return err
		}
		sh := s.shard[s.ring.shard(r.Device)]
		sh.seqs[r.Device] = r.Seq
		sh.ledger[r.Device] = &ledgerEntry{seq: r.Seq, crc: r.CRC, blob: append([]byte(nil), r.Blob...)}
		sh.retired.Merge(res)
		s.counters.records.Add(r.Seq)
		s.devices.get(r.Device).records.Add(r.Seq)
	}
	if snap.Retired != nil {
		res, err := analysis.DecodeStreamResult(snap.Retired)
		if err != nil {
			return err
		}
		// Unattributed (pre-ledger) finalized state: serve it and carry it
		// forward as the legacy aggregate in future checkpoints.
		s.shard[0].retired.Merge(res)
		s.shard[0].retiredLegacy.Merge(res)
	}
	return nil
}

// Addr returns the bound stream-listener address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AdminAddr returns the bound admin address, or nil when disabled.
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.accept.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		if s.drain {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handler.Add(1)
		s.mu.Unlock()
		s.counters.connsTotal.Add(1)
		s.counters.connsActive.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) forgetConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// writeAckTimed writes an acknowledgement under the write deadline.
func (s *Server) writeAckTimed(conn net.Conn, status byte, arg uint64) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
	err := writeAck(conn, status, arg)
	conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	return err
}

// handleConn owns one device connection: hello, admission (drain and rate
// checks), resume handshake, then the frame loop. The handler only accepts
// contiguous in-order frames; duplicates below the resume point are decoded
// (to keep the timestamp chain intact) and dropped, and any unrecoverable
// framing or decode failure severs the connection — the client reconnects
// and resumes from the shard's acknowledged sequence, so severing never
// loses accepted data.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.forgetConn(conn)
		s.counters.connsActive.Add(-1)
		s.handler.Done()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	device, start, helloSeq, err := readHello(br)
	if err != nil {
		s.counters.helloErrors.Add(1)
		s.counters.events.Logf(obs.LevelWarn, "invalid hello from %s", conn.RemoteAddr())
		return
	}

	// A fenced node's state has already been shipped to survivors: anything
	// it accepted now would be acked but never counted fleet-wide. Refuse
	// with a draining ack so the session walks its ring to a live owner.
	if s.fenced.Load() {
		s.writeAckTimed(conn, ackDraining, 0) //nolint:errcheck
		return
	}

	// Cluster routing: a device this node does not own is redirected before
	// it is registered — a misrouted handshake must not invent per-device
	// state (or counters) on a non-owner, or fleet device counts would
	// double across nodes.
	if s.cfg.Route != nil {
		if owner, self := s.cfg.Route(device); !self && owner != "" {
			s.counters.redirects.Add(1)
			s.counters.events.Logf(obs.LevelDebug, "redirected %s to %s", device, owner)
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
			writeRedirectAck(conn, owner)                             //nolint:errcheck // client went away
			return
		}
	}
	dev := s.devices.get(device)

	// Admission: shed load before paying for any decoding.
	if s.cfg.RateLimit > 0 {
		if ok, retry := dev.bucket.take(s.cfg.RateLimit, float64(s.cfg.RateBurst), time.Now()); !ok {
			s.counters.throttled.Add(1)
			s.counters.events.Logf(obs.LevelDebug, "throttled %s (retry in %s)", device, retry)
			s.writeAckTimed(conn, ackThrottled, uint64(retry.Milliseconds())+1) //nolint:errcheck
			return
		}
	}

	// Resume handshake: ask the owning shard for the device's accepted
	// count; the ack tells the client where to (re)start. The enqueue is
	// guarded like Snapshot's: Shutdown closes shard channels only under
	// the write lock, after handlers exit.
	sh := s.shard[s.ring.shard(device)]
	seqc := make(chan int64, 1)
	s.mu.RLock()
	if s.drain {
		s.mu.RUnlock()
		s.writeAckTimed(conn, ackDraining, 0) //nolint:errcheck
		return
	}
	//repolint:allow lockhold — the send drains: shard.run never takes s.mu, and the enqueue must stay under RLock so Shutdown (write lock) cannot close sh.ch mid-send
	sh.ch <- shardReq{seq: &seqReq{device: device, reply: seqc}}
	s.mu.RUnlock()
	next := <-seqc
	if err := s.writeAckTimed(conn, ackOK, uint64(next)); err != nil {
		return
	}
	dev.conns.Add(1)
	if next > 0 || helloSeq > 0 {
		s.counters.resumes.Add(1)
		dev.resumes.Add(1)
	}

	dec := trace.NewRecordDecoder(start)
	fr := newFrameReader(br)
	// Accepted records accumulate column-wise: payloads land in the
	// batch's shared arena (one amortized copy, no per-record allocation)
	// and the shard applies the whole run through FeedBatch. Batches are
	// pooled — the shard returns them after applying.
	cols := batchPool.Get().(*trace.RecordBatch)
	cols.Reset()
	batchFirst := next

	flush := func() {
		if cols.Len() == 0 {
			return
		}
		sh.ch <- shardReq{batch: &recordBatch{
			device: device, firstSeq: batchFirst, cols: cols,
			enqueuedNS: time.Now().UnixNano(),
		}}
		cols = batchPool.Get().(*trace.RecordBatch)
		cols.Reset()
	}
	defer func() {
		flush()
		batchPool.Put(cols)
	}()

	sever := func(reason string) {
		s.counters.severs.Add(1)
		s.counters.events.Logf(obs.LevelWarn, "severed %s: %s", device, reason)
	}

	// Byte accounting is amortized: accepted bodies sum into pendBytes and
	// hit the shared atomics once per frame (and once more on the way out),
	// not once per record — at millions of records a second the per-record
	// atomic adds were a measurable slice of the apply path.
	var pendBytes int64
	flushBytes := func() {
		if pendBytes != 0 {
			s.counters.bytes.Add(pendBytes)
			dev.bytes.Add(pendBytes)
			pendBytes = 0
		}
	}
	defer flushBytes()

	// applyRecord decodes one record body carrying sequence rseq and
	// applies the accept/duplicate/poison rules. It returns false when
	// the connection must be severed (already counted and logged).
	applyRecord := func(rseq int64, rbody []byte) bool {
		rec, err := dec.Decode(rbody)
		if err != nil {
			s.counters.decodeErrors.Add(1)
			dev.decodeErrors.Add(1)
			if rseq == next && dev.notePoison(rseq) >= poisonThreshold {
				// The same head-of-line record failed on poisonThreshold
				// consecutive connections: skip it or the stream wedges
				// in a reconnect loop forever.
				flush()
				sh.ch <- shardReq{skip: &skipReq{device: device, seq: rseq}}
				dev.clearPoison()
				s.counters.events.Logf(obs.LevelError, "poison record skipped: device %s seq %d", device, rseq)
			}
			sever("record decode failure")
			return false
		}
		if rseq < next {
			// Replay below the resume point (a stale or overly cautious
			// client): decoded to advance the chain, then dropped here —
			// and dropped again positionally at the shard if it races.
			s.counters.duplicates.Add(1)
			return true
		}
		if cols.Len() == 0 {
			batchFirst = rseq
		}
		cols.Append(rec)
		next++
		pendBytes += int64(len(rbody))
		return true
	}

	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		seq, body, err := fr.next()
		switch {
		case err == nil:
		case errors.Is(err, ErrFrameCRC):
			// The frame is lost and the timestamp delta chain with it:
			// nothing after this point on this connection can be trusted.
			s.counters.crcErrors.Add(1)
			dev.crcErrors.Add(1)
			sever("frame crc mismatch")
			return
		case errors.Is(err, io.EOF):
			// Connection dropped without a FIN: keep the stream live so a
			// reconnect resumes it. (Shutdown finalizes live streams.)
			return
		default:
			s.counters.frameErrors.Add(1)
			sever("framing error: " + err.Error())
			return
		}
		s.counters.frames.Add(1)

		if isFin(body) {
			if seq != next {
				// A FIN with the wrong sequence means records are missing
				// (or stale): sever, the client resumes and retries.
				s.counters.frameErrors.Add(1)
				sever("fin sequence mismatch")
				return
			}
			flush()
			finc := make(chan int64, 1)
			sh.ch <- shardReq{fin: &finReq{device: device, reply: finc}}
			final := <-finc
			if s.cfg.DurableFIN && s.ckpt != nil {
				// Group commit: the FIN above is already applied by the
				// shard, so joining the next checkpoint batch guarantees the
				// finalized stream reaches disk before the receipt. On
				// failure the ack is withheld — the client re-sends its FIN
				// (idempotent against a finalized stream) and retries the
				// durability barrier on a fresh connection.
				if err := s.finb.wait(s); err != nil {
					sever("durable fin checkpoint failed: " + err.Error())
					return
				}
				s.counters.finDurable.Add(1)
			}
			s.writeAckTimed(conn, ackOK, uint64(final)) //nolint:errcheck
			return
		}
		if seq > next {
			// A gap: the client skipped ahead. Accepting would corrupt
			// positional dedup; sever and let resume renegotiate.
			s.counters.frameErrors.Add(1)
			sever("sequence gap")
			return
		}

		t0 := time.Now()
		if len(body) > 0 && body[0] == batchByte {
			// Batch body: count, then count length-prefixed records where
			// record j carries seq+j. The run is contiguous, so the
			// accept/duplicate split falls out of the same positional rule
			// as single-record frames.
			payload := body[1:]
			count, un := binary.Uvarint(payload)
			if un <= 0 || count == 0 || count > maxBatchRecords {
				s.counters.frameErrors.Add(1)
				sever("malformed batch header")
				return
			}
			payload = payload[un:]
			ok := true
			for j := int64(0); j < int64(count); j++ {
				rl, rn := binary.Uvarint(payload)
				if rn <= 0 || rl > uint64(len(payload)-rn) {
					s.counters.frameErrors.Add(1)
					sever("malformed batch record")
					ok = false
					break
				}
				rbody := payload[rn : rn+int(rl)]
				payload = payload[rn+int(rl):]
				if !applyRecord(seq+j, rbody) {
					ok = false
					break
				}
			}
			s.counters.frameSeconds.Observe(time.Since(t0).Seconds())
			if !ok {
				return
			}
			if len(payload) != 0 {
				s.counters.frameErrors.Add(1)
				sever("trailing bytes after batch")
				return
			}
		} else {
			ok := applyRecord(seq, body)
			s.counters.frameSeconds.Observe(time.Since(t0).Seconds())
			if !ok {
				return
			}
		}
		if pendBytes != 0 {
			// At least one record accepted this frame, so any head-of-line
			// poison tracking is moot; clearing once per frame is equivalent
			// to the old per-record clear (a mid-frame decode failure severs
			// before reaching here, and notePoison resets on a new seq).
			dev.clearPoison()
			flushBytes()
		}
		if cols.Len() >= s.cfg.BatchSize {
			flush()
		}
	}
}

// Snapshot returns the live fleet-wide StreamResult: every shard's retired
// aggregate merged with a tail-settled snapshot of every in-flight device
// stream. After Shutdown it returns the final drained result.
func (s *Server) Snapshot() *analysis.StreamResult {
	s.mu.RLock()
	if s.final != nil {
		defer s.mu.RUnlock()
		return s.final.Clone()
	}
	if s.chClosed {
		// Drain in progress: the queues are closed but the final merge is
		// not published yet. Wait for the shards and read their retired
		// aggregates directly (the done-channel close orders the reads).
		s.mu.RUnlock()
		agg := analysis.NewStreamResult("fleet")
		for _, sh := range s.shard {
			<-sh.done
			agg.Merge(sh.retired)
		}
		return agg
	}
	// Enqueue all queries while holding the read lock (Shutdown closes the
	// shard channels only under the write lock, after handlers exit); the
	// replies are safe to collect outside it — a closing shard drains its
	// queue, queries included, before exiting.
	replies := make([]chan *analysis.StreamResult, len(s.shard))
	for i, sh := range s.shard {
		c := make(chan *analysis.StreamResult, 1)
		replies[i] = c
		//repolint:allow lockhold — the send drains: shard.run never takes s.mu, and the enqueue must stay under RLock so Shutdown (write lock) cannot close sh.ch mid-send
		sh.ch <- shardReq{query: c}
	}
	s.mu.RUnlock()

	agg := analysis.NewStreamResult("fleet")
	for _, c := range replies {
		agg.Merge(<-c)
	}
	return agg
}

// SyncSegments asks every shard to flush its open segment files so a
// reader (GET /query) sees the live tail up to the records applied
// before the call. Same enqueue discipline as Snapshot.
func (s *Server) SyncSegments() error {
	s.mu.RLock()
	if s.final != nil || s.chClosed {
		// Drained or draining: every segment is sealed (or about to be) by
		// the shard exit path; nothing to sync.
		s.mu.RUnlock()
		return nil
	}
	replies := make([]chan error, len(s.shard))
	for i, sh := range s.shard {
		c := make(chan error, 1)
		replies[i] = c
		//repolint:allow lockhold — the send drains: shard.run never takes s.mu, and the enqueue must stay under RLock so Shutdown (write lock) cannot close sh.ch mid-send
		sh.ch <- shardReq{segSync: c}
	}
	s.mu.RUnlock()

	var first error
	for _, c := range replies {
		if err := <-c; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// checkpointLoop persists shard state every CheckpointInterval until
// stopped.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.SaveCheckpoint() //nolint:errcheck // counted in ckptErrors
		case <-s.ckptStop:
			return
		}
	}
}

// stopCheckpointLoop halts periodic checkpointing and waits for any
// in-flight save to finish. Idempotent; no-op when durability is off.
func (s *Server) stopCheckpointLoop() {
	if s.ckptStop == nil {
		return
	}
	s.ckptOnce.Do(func() { close(s.ckptStop) })
	<-s.ckptDone
}

// finBatch is one group-committed durable-FIN checkpoint: everyone who
// joined it before the leader detached shares the result of one save.
type finBatch struct {
	done     chan struct{}
	err      error
	sessions int
}

// finBatcher coalesces concurrently-finishing sessions into shared durable
// checkpoints. The first waiter becomes the batch leader and runs
// SaveCheckpoint; everyone who joins before the leader detaches the batch
// rides the same fsync. Coalescing happens naturally under load: ckptMu
// serializes saves, so FINs arriving during an in-flight save pile onto the
// next batch instead of each paying its own fsync. There is no artificial
// delay — an idle server durably acks a lone FIN at checkpoint latency.
type finBatcher struct {
	mu   sync.Mutex
	next *finBatch
}

// wait joins the next durable-FIN batch and blocks until its checkpoint is
// on disk. Safe to call only after the caller's FIN has been applied by the
// owning shard: the leader detaches the batch before collecting shard
// state, so every joined waiter's finalized stream is covered by the save.
func (b *finBatcher) wait(s *Server) error {
	b.mu.Lock()
	batch := b.next
	if batch == nil {
		batch = &finBatch{done: make(chan struct{})}
		b.next = batch
		go func() {
			b.mu.Lock()
			b.next = nil
			b.mu.Unlock()
			// After the detach no new waiter can join, so sessions is
			// stable and the snapshot below covers every member's FIN.
			batch.err = s.SaveCheckpoint()
			s.counters.finBatchSessions.Observe(float64(batch.sessions))
			close(batch.done)
		}()
	}
	batch.sessions++
	b.mu.Unlock()
	<-batch.done
	return batch.err
}

// fenceStamp is the fence written into every checkpoint: this process's
// incarnation under the current cluster epoch.
func (s *Server) fenceStamp() checkpoint.Fence {
	var epoch uint64
	if s.cfg.ClusterEpoch != nil {
		epoch = s.cfg.ClusterEpoch()
	}
	return checkpoint.Fence{Epoch: epoch, Incarnation: s.incarnation}
}

// Incarnation returns this process lifetime's unique fence identifier.
func (s *Server) Incarnation() string { return s.incarnation }

// Fenced reports whether this node has fenced itself: its durable state was
// shipped to survivors, so it no longer serves streams or checkpoints.
func (s *Server) Fenced() bool { return s.fenced.Load() }

// FenceRequest asks a node to fence itself because the checkpoint written
// by the named incarnation (up to Generation) was handed off to survivors.
// The aggregator posts it to a member that turns up alive again while a
// handoff tombstone for it is on record.
type FenceRequest struct {
	Incarnation string `json:"incarnation"`
	Generation  uint64 `json:"generation"`
}

// FenceResponse reports the node's fence state and current incarnation; an
// aggregator clears its tombstone when a different incarnation answers
// unfenced (a clean successor that already archived on Start).
type FenceResponse struct {
	NodeID      string `json:"node_id"`
	Incarnation string `json:"incarnation"`
	Fenced      bool   `json:"fenced"`
}

// HandleFence processes a fence probe. The request matches when the shipped
// incarnation is this process (a partitioned node whose state was handed
// off while it was unreachable — the partition-heal case) or the
// incarnation this process restored its state from (a rejoin that raced the
// tombstone write). Either way the node's contribution already lives on the
// survivors, so it fences: stops checkpointing, severs its sessions (they
// resume on the live owners), archives its checkpoint dir and refuses new
// streams. Fencing a live partitioned node is lossless when -durable-fin is
// on; without it, completed-session tails since the shipped generation
// existed only here (see DESIGN.md §10).
func (s *Server) HandleFence(req FenceRequest) FenceResponse {
	match := req.Incarnation != "" &&
		(req.Incarnation == s.incarnation || req.Incarnation == s.restoredFence.Incarnation)
	if match {
		s.fence(fmt.Sprintf("incarnation %s shipped to survivors at generation %d", req.Incarnation, req.Generation), req.Generation)
	}
	return FenceResponse{NodeID: s.cfg.NodeID, Incarnation: s.incarnation, Fenced: s.fenced.Load()}
}

// fence transitions the server into the fenced state (idempotent).
func (s *Server) fence(reason string, shippedGen uint64) {
	if !s.fenced.CompareAndSwap(false, true) {
		return
	}
	s.counters.fenced.Set(1)
	s.counters.events.Logf(obs.LevelError, "node fenced: %s", reason)
	// Stop persisting before archiving: a checkpoint written after the
	// archive would resurrect state the fleet already counted elsewhere.
	// (SaveCheckpoint also refuses once the flag is set.)
	s.stopCheckpointLoop()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if s.ckpt != nil {
		s.ckptMu.Lock()
		tomb := checkpoint.Tombstone{
			Node: s.cfg.NodeID, Incarnation: s.incarnation,
			Generation: shippedGen, UnixNano: time.Now().UnixNano(),
		}
		if err := checkpoint.WriteTombstone(s.cfg.CheckpointDir, tomb); err != nil {
			s.counters.events.Logf(obs.LevelError, "fence: tombstone write failed: %v", err)
		}
		if sub, err := s.ckpt.ArchiveShipped(&tomb); err != nil {
			s.counters.events.Logf(obs.LevelError, "fence: archive failed: %v", err)
		} else {
			s.counters.fenceArchives.Add(1)
			s.counters.events.Logf(obs.LevelInfo, "fence: checkpoints archived to %s", sub)
		}
		s.ckptMu.Unlock()
	}
	if s.cfg.OnFenced != nil {
		//repolint:allow goexit — one-shot user callback through a function value; it runs to completion and has nothing to tie to
		go s.cfg.OnFenced(reason)
	}
}

// SaveCheckpoint collects every shard's durable state and writes one
// checkpoint generation. It is safe to call concurrently with ingest (the
// shards serialize their own state between batches) and is a no-op while
// draining, fenced, or when durability is disabled.
func (s *Server) SaveCheckpoint() error {
	if s.ckpt == nil {
		return errors.New("ingest: checkpointing disabled")
	}
	if s.fenced.Load() {
		return errors.New("ingest: fenced")
	}
	s.mu.RLock()
	if s.drain {
		s.mu.RUnlock()
		return errors.New("ingest: draining")
	}
	replies := make([]chan shardCkpt, len(s.shard))
	for i, sh := range s.shard {
		c := make(chan shardCkpt, 1)
		replies[i] = c
		//repolint:allow lockhold — the send drains: shard.run never takes s.mu, and the enqueue must stay under RLock so Shutdown (write lock) cannot close sh.ch mid-send
		sh.ch <- shardReq{ckpt: c}
	}
	s.mu.RUnlock()

	var snap checkpoint.Snapshot
	retired := analysis.NewStreamResult("fleet")
	for _, c := range replies {
		ck := <-c
		snap.Devices = append(snap.Devices, ck.devices...)
		snap.Ledger = append(snap.Ledger, ck.ledger...)
		retired.Merge(ck.retired)
	}
	snap.Retired = retired.AppendBinary(nil)
	snap.Fence = s.fenceStamp()
	return s.writeCheckpoint(&snap)
}

// TransferResult reports what a checkpoint handoff did on the receiving
// node; it is the JSON body of the admin POST /transfer response.
type TransferResult struct {
	NodeID          string `json:"node_id,omitempty"`
	AcceptedDevices int    `json:"accepted_devices"`
	Records         int64  `json:"records"`
	SkippedStale    int    `json:"skipped_stale"`
	SkippedNotOwned int    `json:"skipped_not_owned"`
	RetiredMerged   bool   `json:"retired_merged"`
}

// RestoreTransfer adopts a dead node's checkpoint into this running server:
// the ownership-handoff receive path. Devices this node does not own (per
// Route) are skipped — the same checkpoint is shipped to every survivor and
// each keeps only its share, so no device is stranded and none lands twice.
// Owned entries — live accumulators and retirement-ledger entries alike —
// go through the shard queues and are applied under the positional rule
// (incoming seq strictly ahead wins), which makes re-delivery idempotent
// and safe to race with live re-streams from redirected clients; in
// particular a device that was finalized on the dead node AND fully
// re-streamed here dedups to exactly-once via its ledger seq. The legacy
// (unattributed) retired aggregate is merged only when includeRetired is
// set — exactly one survivor per handoff may receive it, or its finalized
// energy would double-count fleet-wide — and is further deduplicated by
// content CRC, so re-delivery of the same checkpoint file (a drain handoff
// racing an aggregator death-handoff) merges it once.
//
// Every opaque blob is decoded before any state is mutated: a transfer
// either applies cleanly or severs with no effect.
func (s *Server) RestoreTransfer(snap *checkpoint.Snapshot, includeRetired bool) (TransferResult, error) {
	res := TransferResult{NodeID: s.cfg.NodeID}
	groups := make(map[int]*restoreReq)
	for i := range snap.Devices {
		d := &snap.Devices[i]
		if s.cfg.Route != nil {
			if _, self := s.cfg.Route(d.Device); !self {
				res.SkippedNotOwned++
				continue
			}
		}
		var acc *analysis.StreamAccumulator
		if d.Acc != nil {
			a, err := analysis.RestoreStreamAccumulator(d.Acc, s.cfg.Opts)
			if err != nil {
				return TransferResult{NodeID: s.cfg.NodeID}, fmt.Errorf("ingest: transfer device %q: %w", d.Device, err)
			}
			acc = a
		}
		si := s.ring.shard(d.Device)
		g := groups[si]
		if g == nil {
			g = &restoreReq{}
			groups[si] = g
		}
		g.entries = append(g.entries, transferEntry{device: d.Device, seq: d.Seq, acc: acc})
	}
	for i := range snap.Ledger {
		r := &snap.Ledger[i]
		if s.cfg.Route != nil {
			if _, self := s.cfg.Route(r.Device); !self {
				res.SkippedNotOwned++
				continue
			}
		}
		decoded, err := analysis.DecodeStreamResult(r.Blob)
		if err != nil {
			return TransferResult{NodeID: s.cfg.NodeID}, fmt.Errorf("ingest: transfer retired device %q: %w", r.Device, err)
		}
		si := s.ring.shard(r.Device)
		g := groups[si]
		if g == nil {
			g = &restoreReq{}
			groups[si] = g
		}
		g.ledger = append(g.ledger, retiredTransfer{
			device: r.Device, seq: r.Seq, crc: r.CRC,
			blob: append([]byte(nil), r.Blob...), res: decoded,
		})
	}
	var retiredCRC uint32
	if includeRetired && snap.Retired != nil {
		retired, err := analysis.DecodeStreamResult(snap.Retired)
		if err != nil {
			return TransferResult{NodeID: s.cfg.NodeID}, fmt.Errorf("ingest: transfer retired aggregate: %w", err)
		}
		retiredCRC = crc32.ChecksumIEEE(snap.Retired)
		s.retiredMu.Lock()
		_, dup := s.mergedRetired[retiredCRC]
		if !dup {
			if s.mergedRetired == nil {
				s.mergedRetired = map[uint32]struct{}{}
			}
			s.mergedRetired[retiredCRC] = struct{}{}
		}
		s.retiredMu.Unlock()
		if !dup {
			// The retired aggregate is placement-irrelevant (it is only
			// ever merged); attach it to shard 0's request.
			g := groups[0]
			if g == nil {
				g = &restoreReq{}
				groups[0] = g
			}
			g.retired = retired
			res.RetiredMerged = true
		}
	}
	// Enqueue under the read lock (Shutdown closes shard channels only
	// under the write lock, after handlers exit); collect outside it — a
	// closing shard drains its queue before exiting.
	type pending struct {
		sh    *shard
		req   *restoreReq
		reply chan transferReply
	}
	pend := make([]pending, 0, len(groups))
	for si, g := range groups {
		c := make(chan transferReply, 1)
		g.reply = c
		pend = append(pend, pending{sh: s.shard[si], req: g, reply: c})
	}
	s.mu.RLock()
	if s.drain {
		s.mu.RUnlock()
		if res.RetiredMerged {
			// Nothing was applied: forget the claim so a retry can merge.
			s.retiredMu.Lock()
			delete(s.mergedRetired, retiredCRC)
			s.retiredMu.Unlock()
		}
		return TransferResult{NodeID: s.cfg.NodeID}, errors.New("ingest: draining")
	}
	for _, p := range pend {
		//repolint:allow lockhold — the send drains: shard.run never takes s.mu, and the enqueue must stay under RLock so Shutdown (write lock) cannot close sh.ch mid-send
		p.sh.ch <- shardReq{restore: p.req}
	}
	s.mu.RUnlock()
	for _, p := range pend {
		rep := <-p.reply
		res.AcceptedDevices += rep.accepted
		res.SkippedStale += rep.stale
		res.Records += rep.records
	}
	s.counters.transfers.Add(1)
	s.counters.transferDevices.Add(int64(res.AcceptedDevices))
	s.counters.events.Logf(obs.LevelInfo, "transfer adopted %d devices / %d records (%d stale, %d not owned, retired=%v)",
		res.AcceptedDevices, res.Records, res.SkippedStale, res.SkippedNotOwned, res.RetiredMerged)
	return res, nil
}

func (s *Server) writeCheckpoint(snap *checkpoint.Snapshot) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// Re-checked under ckptMu: a save that raced the fence transition must
	// not write a fresh generation into the just-archived directory.
	if s.fenced.Load() {
		return errors.New("ingest: fenced")
	}
	t0 := time.Now()
	_, gen, err := s.ckpt.Save(snap)
	s.counters.ckptSeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.counters.ckptErrors.Add(1)
		s.counters.events.Logf(obs.LevelError, "checkpoint save failed: %v", err)
		return err
	}
	s.counters.ckptGen.Set(int64(gen))
	s.counters.ckptUnixNano.Set(time.Now().UnixNano())
	var size int64
	for i := range snap.Devices {
		size += int64(len(snap.Devices[i].Acc) + len(snap.Devices[i].Device) + 16)
	}
	for i := range snap.Ledger {
		size += int64(len(snap.Ledger[i].Blob) + len(snap.Ledger[i].Device) + 24)
	}
	s.counters.ckptBytes.Set(size + int64(len(snap.Retired)))
	s.counters.events.Logf(obs.LevelDebug, "checkpoint generation %d saved (%d devices)", gen, len(snap.Devices))
	return nil
}

// Stats assembles the observability snapshot.
func (s *Server) Stats(perDevice bool) Stats {
	now := time.Now()
	records, bytes := s.counters.records.Load(), s.counters.bytes.Load()
	rps, bps := s.rates.rates(records, bytes, now)
	st := Stats{
		NodeID:         s.cfg.NodeID,
		UptimeSec:      now.Sub(s.started).Seconds(),
		ConnsActive:    s.counters.connsActive.Load(),
		ConnsTotal:     s.counters.connsTotal.Load(),
		Devices:        s.devices.len(),
		Frames:         s.counters.frames.Load(),
		Records:        records,
		Bytes:          bytes,
		CRCErrors:      s.counters.crcErrors.Load(),
		DecodeErrors:   s.counters.decodeErrors.Load(),
		FrameErrors:    s.counters.frameErrors.Load(),
		HelloErrors:    s.counters.helloErrors.Load(),
		RecordsPerSec:  rps,
		BytesPerSec:    bps,
		Duplicates:     s.counters.duplicates.Load(),
		Resumes:        s.counters.resumes.Load(),
		Throttled:      s.counters.throttled.Load(),
		Severs:         s.counters.severs.Load(),
		RecordsSkipped: s.counters.recordsSkipped.Load(),

		Redirects:       s.counters.redirects.Load(),
		Transfers:       s.counters.transfers.Load(),
		TransferDevices: s.counters.transferDevices.Load(),
		TransferErrors:  s.counters.transferErrors.Load(),
		Fenced:          s.fenced.Load(),
	}
	if s.ckpt != nil {
		ck := &CheckpointStats{
			Generation: uint64(s.counters.ckptGen.Load()),
			Bytes:      s.counters.ckptBytes.Load(),
			Errors:     s.counters.ckptErrors.Load(),
		}
		if last := s.counters.ckptUnixNano.Load(); last > 0 {
			ck.AgeSec = now.Sub(time.Unix(0, last)).Seconds()
		}
		st.Checkpoint = ck
	}
	for _, sh := range s.shard {
		st.ShardDepths = append(st.ShardDepths, sh.depth())
	}
	if perDevice {
		st.PerDevice = s.devices.snapshot()
	}
	return st
}

// DeviceRecords returns the number of records accepted for one device —
// the server-side acknowledgement count a drained headline corresponds to.
func (s *Server) DeviceRecords(device string) int64 {
	if d := s.devices.lookup(device); d != nil {
		return d.records.Load()
	}
	return 0
}

// Shutdown drains the server: stop checkpointing, stop accepting, sever
// every connection (the handlers flush their partial batches on the way
// out), close the shard queues and wait for them to drain and finalise all
// live streams. The returned StreamResult is the final fleet aggregate over
// every record the server accepted; it remains available via Snapshot. With
// durability enabled a final checkpoint is written so a subsequent Start
// sees the fully-finalized state.
func (s *Server) Shutdown(ctx context.Context) (*analysis.StreamResult, error) {
	s.stopCheckpointLoop()
	s.mu.Lock()
	if s.drain {
		final := s.final
		s.mu.Unlock()
		if final == nil {
			return nil, fmt.Errorf("ingest: shutdown already in progress")
		}
		return final.Clone(), nil
	}
	s.drain = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.counters.events.Logf(obs.LevelInfo, "drain started")

	s.accept.Wait()
	if err := waitCtx(ctx, &s.handler); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.chClosed = true
	for _, sh := range s.shard {
		close(sh.ch)
	}
	s.mu.Unlock()
	agg := analysis.NewStreamResult("fleet")
	var snap checkpoint.Snapshot
	legacy := analysis.NewStreamResult("fleet")
	for _, sh := range s.shard {
		select {
		case <-sh.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		agg.Merge(sh.retired)
		// The worker has exited; its maps are safe to read. Every device is
		// finalized now: each carries a ledger entry with its final result,
		// except skip-advanced or v1-restored devices, which keep bare seqs
		// with their contribution in the legacy aggregate.
		if s.ckpt != nil {
			for dev, seq := range sh.seqs {
				if sh.ledger[dev] == nil {
					snap.Devices = append(snap.Devices, checkpoint.DeviceState{Device: dev, Seq: seq})
				}
			}
			for dev, e := range sh.ledger {
				snap.Ledger = append(snap.Ledger, checkpoint.RetiredRecord{
					Device: dev, Seq: e.seq, CRC: e.crc, Blob: e.blob,
				})
			}
			legacy.Merge(sh.retiredLegacy)
		}
	}

	s.mu.Lock()
	s.final = agg
	s.mu.Unlock()
	s.counters.events.Logf(obs.LevelInfo, "drain complete: %d records over %d devices",
		s.counters.records.Load(), s.devices.len())

	if s.ckpt != nil && !s.fenced.Load() {
		snap.Retired = legacy.AppendBinary(nil)
		snap.Fence = s.fenceStamp()
		s.writeCheckpoint(&snap) //nolint:errcheck // counted in ckptErrors
	}
	if s.admin != nil {
		s.admin.Shutdown(ctx) //nolint:errcheck // best effort
	}
	return agg.Clone(), nil
}

// Kill simulates a crash for recovery testing: it stops the server abruptly
// without finalizing streams, publishing a result, or writing a final
// checkpoint. Whatever the periodic checkpoint loop last persisted is all a
// subsequent Start will see — exactly the fail-stop model. (In-process
// goroutines are still joined so tests under -race stay clean; the data
// loss is real, the goroutine leak is not.)
func (s *Server) Kill() {
	s.stopCheckpointLoop()
	s.mu.Lock()
	if s.drain {
		s.mu.Unlock()
		return
	}
	s.drain = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.accept.Wait()
	s.handler.Wait()
	s.mu.Lock()
	s.chClosed = true
	for _, sh := range s.shard {
		close(sh.ch)
	}
	s.mu.Unlock()
	for _, sh := range s.shard {
		<-sh.done
	}
	if s.admin != nil {
		s.admin.Close() //nolint:errcheck // crash simulation
	}
}

// waitCtx waits on a WaitGroup, bounded by the context.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
