//go:build !race

package ingest

// See race_on_test.go.
const raceEnabled = false
