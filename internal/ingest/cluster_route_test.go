package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/synthgen"
)

// TestRedirectAck: a server whose Route hook disowns a device must answer
// the handshake with a redirect ack naming the owner, before any per-device
// state is created — a misrouted hello must not register the device here.
func TestRedirectAck(t *testing.T) {
	owner := "198.51.100.7:9009"
	s := startServer(t, Config{
		Shards: 1,
		Route:  func(device string) (string, bool) { return owner, false },
	})
	defer s.Kill()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = NewClient(conn, "dev-elsewhere", 0, 0)
	var rd *ErrRedirect
	if !errors.As(err, &rd) {
		t.Fatalf("want ErrRedirect, got %v", err)
	}
	if rd.Addr != owner {
		t.Fatalf("redirect addr = %q, want %q", rd.Addr, owner)
	}
	if got := s.counters.redirects.Load(); got != 1 {
		t.Errorf("redirects counter = %d, want 1", got)
	}
	if got := s.Stats(false).Redirects; got != 1 {
		t.Errorf("Stats.Redirects = %d, want 1", got)
	}
	if s.devices.lookup("dev-elsewhere") != nil {
		t.Error("redirected handshake registered per-device state")
	}
}

// TestStreamTraceFollowsRedirect: a session that dials a non-owner must
// follow the redirect ack to the owner and deliver the complete stream
// there, with the detour visible in its stats.
func TestStreamTraceFollowsRedirect(t *testing.T) {
	b := startServer(t, Config{Shards: 1, QueueDepth: 8, BatchSize: 8})
	a := startServer(t, Config{
		Shards: 1, QueueDepth: 8, BatchSize: 8,
		Route: func(device string) (string, bool) { return b.Addr().String(), false },
	})
	defer a.Kill()
	defer b.Kill()

	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	st, err := StreamTrace(SessionConfig{
		Nodes:    []string{a.Addr().String()}, // the session's whole world is the non-owner
		Device:   dt.Device,
		Start:    dt.Start,
		Deadline: 30 * time.Second,
		Backoff:  Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}, dt.Records)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redirected != 1 {
		t.Errorf("session redirected %d times, want 1", st.Redirected)
	}
	if st.Conns != 1 {
		t.Errorf("session accepted conns = %d, want 1 (redirect is pre-accept)", st.Conns)
	}
	if got := b.DeviceRecords(dt.Device); got != int64(len(dt.Records)) {
		t.Fatalf("owner accepted %d records, want %d", got, len(dt.Records))
	}
	if got := a.DeviceRecords(dt.Device); got != 0 {
		t.Fatalf("non-owner accepted %d records, want 0", got)
	}
}

// TestAdminNodeID: in cluster mode the /headline and /stats documents must
// carry the node's identity so fleet-wide debugging can attribute numbers.
func TestAdminNodeID(t *testing.T) {
	s := startServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0", NodeID: "n7"})
	defer s.Kill()
	base := "http://" + s.AdminAddr().String()

	for _, path := range []string{"/headline", "/stats"} {
		var doc struct {
			NodeID string `json:"node_id"`
		}
		getJSONT(t, base+path, &doc)
		if doc.NodeID != "n7" {
			t.Errorf("%s node_id = %q, want n7", path, doc.NodeID)
		}
	}
}

// TestSnapshotEndpoint: the aggregator's pull surface must serve the binary
// fleet StreamResult with a CRC header that actually covers the bytes and
// device/record counts matching the server's own accounting.
func TestSnapshotEndpoint(t *testing.T) {
	s := startServer(t, Config{Shards: 2, AdminAddr: "127.0.0.1:0", NodeID: "n1", QueueDepth: 8, BatchSize: 8})
	defer s.Kill()
	dts := synthgen.GenerateInMemory(synthgen.Small(2, 1))
	var sent int64
	for _, dt := range dts {
		streamTrace(t, s.Addr().String(), dt)
		sent += int64(len(dt.Records))
	}

	resp, err := http.Get("http://" + s.AdminAddr().String() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	wantCRC, err := strconv.ParseUint(resp.Header.Get("X-Snapshot-CRC32"), 10, 32)
	if err != nil {
		t.Fatalf("crc header: %v", err)
	}
	if got := crc32.ChecksumIEEE(body); got != uint32(wantCRC) {
		t.Fatalf("crc = %d, header says %d", got, wantCRC)
	}
	if got := resp.Header.Get("X-Node-ID"); got != "n1" {
		t.Errorf("X-Node-ID = %q", got)
	}
	if got := resp.Header.Get("X-Records"); got != strconv.FormatInt(sent, 10) {
		t.Errorf("X-Records = %s, want %d", got, sent)
	}
	if got := resp.Header.Get("X-Devices"); got != strconv.Itoa(len(dts)) {
		t.Errorf("X-Devices = %s, want %d", got, len(dts))
	}
	res, err := analysis.DecodeStreamResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Snapshot(); math.Abs(res.Ledger.Total-want.Ledger.Total) > 1e-9*(1+want.Ledger.Total) {
		t.Errorf("snapshot energy %v, server %v", res.Ledger.Total, want.Ledger.Total)
	}
}

// TestTransferRoundTrip is the handoff receive-path contract: a checkpoint
// file shipped to a fresh node must reproduce the origin's state bit-for-bit
// (live accumulators, sequence numbers, the retirement ledger), re-delivery
// must be a stale no-op, ?skip_retired=1 must withhold only the legacy
// unattributed aggregate — ledger-held finalized energy is ownership-routed
// and survives it — and a node that owns none of the devices must adopt
// nothing.
func TestTransferRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := startServer(t, Config{Shards: 2, QueueDepth: 16, BatchSize: 4, CheckpointDir: dir})
	defer a.Kill()
	dts := synthgen.GenerateInMemory(synthgen.Small(3, 1))

	// Device 0 runs to completion (FIN -> retired aggregate); the rest stop
	// mid-stream with no FIN, leaving live accumulators behind.
	streamTrace(t, a.Addr().String(), dts[0])
	var sent int64 = int64(len(dts[0].Records))
	for _, dt := range dts[1:] {
		cut := len(dt.Records) / 2
		c, err := Dial(a.Addr().String(), dt.Device, dt.Start, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			if err := c.Send(&dt.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		c.CloseAbort() //nolint:errcheck
		deadline := time.Now().Add(5 * time.Second)
		for a.DeviceRecords(dt.Device) < int64(cut) && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if got := a.DeviceRecords(dt.Device); got != int64(cut) {
			t.Fatalf("device %s: accepted %d, want %d", dt.Device, got, cut)
		}
		sent += int64(cut)
	}

	if err := a.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	file, gen, err := store.LoadLatestRaw()
	if err != nil || file == nil {
		t.Fatalf("no raw checkpoint (gen %d): %v", gen, err)
	}

	// Full transfer into B: state must match A.
	b := startServer(t, Config{Shards: 3, AdminAddr: "127.0.0.1:0", NodeID: "nb", QueueDepth: 16, BatchSize: 4})
	defer b.Kill()
	res := postTransfer(t, b, file, false)
	if res.NodeID != "nb" {
		t.Errorf("transfer node_id = %q", res.NodeID)
	}
	if res.AcceptedDevices != len(dts) || res.SkippedStale != 0 || res.SkippedNotOwned != 0 {
		t.Fatalf("transfer result %+v, want %d devices accepted", res, len(dts))
	}
	if !res.RetiredMerged {
		t.Error("retired aggregate not merged on the primary survivor")
	}
	if res.Records != sent {
		t.Fatalf("transfer records %d, want %d", res.Records, sent)
	}
	for _, dt := range dts {
		if got, want := b.DeviceRecords(dt.Device), a.DeviceRecords(dt.Device); got != want {
			t.Errorf("device %s: B has %d records, A has %d", dt.Device, got, want)
		}
	}
	ha, hb := a.Headline(), b.Headline()
	if ha.Records != hb.Records || ha.Devices != hb.Devices {
		t.Fatalf("counts diverge: A %d/%d, B %d/%d", ha.Devices, ha.Records, hb.Devices, hb.Records)
	}
	if d := math.Abs(ha.TotalEnergyJ - hb.TotalEnergyJ); d > 1e-9*(1+ha.TotalEnergyJ) {
		t.Errorf("energy diverges after transfer: A %v, B %v", ha.TotalEnergyJ, hb.TotalEnergyJ)
	}

	// Re-delivery (the aggregator retries, or a drain handoff races the
	// aggregator's): every entry is stale, nothing changes.
	res2 := postTransfer(t, b, file, false)
	if res2.AcceptedDevices != 0 || res2.SkippedStale != len(dts) || res2.Records != 0 {
		t.Fatalf("re-delivery result %+v, want all-stale no-op", res2)
	}
	if res2.RetiredMerged {
		t.Error("re-delivered retired aggregate merged twice")
	}
	if got := b.Headline(); got.Records != hb.Records || math.Abs(got.TotalEnergyJ-hb.TotalEnergyJ) > 1e-9*(1+hb.TotalEnergyJ) {
		t.Error("re-delivered transfer changed state")
	}

	// skip_retired withholds only the legacy unattributed aggregate.
	// Finalized devices ride the retirement ledger, which is ownership-routed
	// per device exactly like live state, so a survivor that owns everything
	// reconstructs the full energy even under skip_retired=1 — the v1 "whole
	// aggregate to one blessed survivor" split no longer loses attribution.
	c := startServer(t, Config{Shards: 2, AdminAddr: "127.0.0.1:0", NodeID: "nc", QueueDepth: 16, BatchSize: 4})
	defer c.Kill()
	res3 := postTransfer(t, c, file, true)
	if res3.RetiredMerged {
		t.Error("skip_retired=1 still merged the legacy retired aggregate")
	}
	if res3.Records != sent {
		t.Fatalf("skip_retired records %d, want %d (seq bookkeeping is unconditional)", res3.Records, sent)
	}
	hc := c.Headline()
	if d := math.Abs(hc.TotalEnergyJ - hb.TotalEnergyJ); d > 1e-9*(1+hb.TotalEnergyJ) {
		t.Errorf("ledger-held energy lost under skip_retired: C %v, full transfer %v", hc.TotalEnergyJ, hb.TotalEnergyJ)
	}

	// A node that owns none of the devices adopts nothing.
	d := startServer(t, Config{
		Shards: 1, QueueDepth: 8, BatchSize: 4,
		Route: func(device string) (string, bool) { return "elsewhere:9", false },
	})
	defer d.Kill()
	snap, err := checkpoint.DecodeFile(file)
	if err != nil {
		t.Fatal(err)
	}
	res4, err := d.RestoreTransfer(snap, true)
	if err != nil {
		t.Fatal(err)
	}
	if res4.AcceptedDevices != 0 || res4.SkippedNotOwned != len(dts) {
		t.Fatalf("non-owner result %+v, want everything skipped", res4)
	}
}

// TestRetiredLedgerDedup closes the retired double-count window: a device
// whose session finalized on a dying node AND whose records reached a
// survivor again (lost FIN ack -> client re-streams, then the dead node's
// checkpoint is handed off) must contribute its energy exactly once,
// whichever of the re-stream and the handoff lands first and however far
// the re-stream got.
func TestRetiredLedgerDedup(t *testing.T) {
	dir := t.TempDir()
	a := startServer(t, Config{Shards: 1, QueueDepth: 16, BatchSize: 4, CheckpointDir: dir})
	defer a.Kill()
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	n := int64(len(dt.Records))
	streamTrace(t, a.Addr().String(), dt) // FIN -> retirement-ledger entry
	if err := a.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	file, _, err := store.LoadLatestRaw()
	if err != nil || file == nil {
		t.Fatal("no checkpoint")
	}
	want := a.Headline().TotalEnergyJ
	if want <= 0 {
		t.Fatal("reference energy is zero; test is vacuous")
	}

	checkOnce := func(t *testing.T, s *Server, label string) {
		t.Helper()
		if got := s.DeviceRecords(dt.Device); got != n {
			t.Errorf("%s: device records %d, want %d", label, got, n)
		}
		if got := s.Headline().TotalEnergyJ; math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("%s: energy %v, want exactly-once %v", label, got, want)
		}
	}

	// Re-stream completed first: the survivor retired the device locally, so
	// the handoff's ledger entry is a stale replay (retirement is terminal,
	// first wins).
	b := startServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0", QueueDepth: 16, BatchSize: 4})
	defer b.Kill()
	streamTrace(t, b.Addr().String(), dt)
	res := postTransfer(t, b, file, false)
	if res.AcceptedDevices != 0 || res.SkippedStale != 1 || res.Records != 0 {
		t.Fatalf("handoff after local retire: %+v, want one stale entry", res)
	}
	checkOnce(t, b, "retire-then-handoff")

	// Re-stream was mid-flight: the finalized ledger blob is a strict
	// superset of the partial live accumulator, which is discarded.
	c := startServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0", QueueDepth: 16, BatchSize: 4})
	defer c.Kill()
	cut := len(dt.Records) / 2
	cl, err := Dial(c.Addr().String(), dt.Device, dt.Start, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if err := cl.Send(&dt.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	cl.CloseAbort() //nolint:errcheck
	deadline := time.Now().Add(5 * time.Second)
	for c.DeviceRecords(dt.Device) < int64(cut) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	res2 := postTransfer(t, c, file, false)
	if res2.AcceptedDevices != 1 || res2.Records != n-int64(cut) {
		t.Fatalf("handoff over partial re-stream: %+v, want adopted with %d-record delta", res2, n-int64(cut))
	}
	checkOnce(t, c, "partial-then-handoff")

	// Handoff landed first: the re-stream session resumes at the ledger seq,
	// retransmits nothing, and its FIN replay is a no-op on the retired
	// device.
	d := startServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0", QueueDepth: 16, BatchSize: 4})
	defer d.Kill()
	res3 := postTransfer(t, d, file, false)
	if res3.AcceptedDevices != 1 || res3.Records != n {
		t.Fatalf("handoff to fresh node: %+v", res3)
	}
	st, err := StreamTrace(SessionConfig{
		Nodes:    []string{d.Addr().String()},
		Device:   dt.Device,
		Start:    dt.Start,
		Deadline: 30 * time.Second,
		Backoff:  Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}, dt.Records)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n {
		t.Errorf("re-stream session acked %d records, want %d", st.Records, n)
	}
	if st.Bytes != 0 {
		t.Errorf("re-stream after handoff wrote %d record bytes, want 0 (resume at ledger seq)", st.Bytes)
	}
	checkOnce(t, d, "handoff-then-restream")
}

// TestTransferRejectsCorruptFile: flipped bits in the shipped file must be
// caught by the container CRC and sever with no state change.
func TestTransferRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	a := startServer(t, Config{Shards: 1, QueueDepth: 8, BatchSize: 4, CheckpointDir: dir})
	defer a.Kill()
	dt := synthgen.GenerateInMemory(synthgen.Small(1, 1))[0]
	streamTrace(t, a.Addr().String(), dt)
	if err := a.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	file, _, err := store.LoadLatestRaw()
	if err != nil || file == nil {
		t.Fatal("no checkpoint")
	}
	file[len(file)-1] ^= 0x40

	b := startServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0", QueueDepth: 8, BatchSize: 4})
	defer b.Kill()
	resp, err := http.Post("http://"+b.AdminAddr().String()+"/transfer", "application/octet-stream", bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt transfer status = %d, want 400", resp.StatusCode)
	}
	if got := b.Stats(false).TransferErrors; got != 1 {
		t.Errorf("transfer_errors = %d, want 1", got)
	}
	if got := b.counters.records.Load(); got != 0 {
		t.Errorf("corrupt transfer mutated state: %d records", got)
	}
}

func postTransfer(t *testing.T, s *Server, file []byte, skipRetired bool) TransferResult {
	t.Helper()
	url := "http://" + s.AdminAddr().String() + "/transfer"
	if skipRetired {
		url += "?skip_retired=1"
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body) //nolint:errcheck // test diagnostics
		t.Fatalf("transfer status %d: %s", resp.StatusCode, body)
	}
	var res TransferResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func getJSONT(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
