package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestNewSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := New(7)
	p.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream mirrors parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(7) value %d occurred %d times; want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nProperty(t *testing.T) {
	r := New(5)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(1 << 20); v >= 1<<20 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(9)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(10)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 2500 || trues > 3500 {
		t.Errorf("Bool(0.3) fired %d/10000 times", trues)
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const mean = 5.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.1 {
		t.Errorf("Exp mean = %v, want ~%v", got, mean)
	}
	if r.Exp(-1) != 0 || r.Exp(0) != 0 {
		t.Error("Exp with non-positive mean should return 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(12)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Errorf("Norm variance = %v, want ~4", variance)
	}
}

func TestLogNormalMeanTargets(t *testing.T) {
	r := New(13)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormalMean(90, 0.8)
	}
	got := sum / n
	if math.Abs(got-90) > 3 {
		t.Errorf("LogNormalMean mean = %v, want ~90", got)
	}
	if r.LogNormalMean(0, 1) != 0 {
		t.Error("LogNormalMean(0, _) should be 0")
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(14)
	for _, lambda := range []float64{0.5, 4, 50, 800} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		got := float64(sum) / n
		if math.Abs(got-lambda)/lambda > 0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson with non-positive lambda should be 0")
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(15)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(10, 1.5); v < 10 {
			t.Fatalf("Pareto sample %v below minimum", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[99] {
		t.Errorf("Zipf not monotone: rank0=%d rank10=%d rank99=%d", counts[0], counts[10], counts[99])
	}
	// Rank 0 should take roughly 1/H(100) ~ 19% of mass.
	if counts[0] < 15000 || counts[0] > 25000 {
		t.Errorf("Zipf rank-0 mass %d, want ~19000", counts[0])
	}
	if z.N() != 100 {
		t.Errorf("N = %d, want 100", z.N())
	}
}

func TestZipfRangeProperty(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 37, 0.9)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v < 0 || v >= 37 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestCategoricalWeights(t *testing.T) {
	r := New(18)
	c := NewCategorical(r, []float64{1, 0, 3})
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[c.Next()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanicsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	NewCategorical(New(1), []float64{0, -1})
}

func TestJitterBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if r.Jitter(100, 0) != 100 {
		t.Error("Jitter with zero frac should be identity")
	}
}
