// Package rng provides a deterministic pseudo-random number generator and a
// set of distributions used throughout the synthetic workload generator.
//
// Every experiment in this repository derives all of its randomness from a
// single Source seed, so results are reproducible bit-for-bit across runs and
// machines. The generator is xoshiro256**, seeded through splitmix64, both of
// which are small, fast, public-domain algorithms with well-understood
// statistical behaviour — more than adequate for workload synthesis (this is
// not a cryptographic generator).
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New. Source is not safe for concurrent use; derive
// independent streams with Split instead of sharing one Source.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, guaranteeing a
// well-mixed non-zero internal state for any seed value, including zero.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives a new independent Source from r. The derived stream is
// decorrelated from the parent by reseeding through splitmix64, so a parent
// and its children may be used concurrently (each by a single goroutine).
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic rejection sampling on the top range to avoid modulo bias.
	max := (^uint64(0) / n) * n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63 returns a non-negative int64, mirroring math/rand's contract so
// callers can port code without surprises.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
// A non-positive mean returns 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	// Guard against log(0) by nudging u away from zero.
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *Source) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 == 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed sample parameterised by the
// location mu and scale sigma of the underlying normal distribution.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// LogNormalMean returns a log-normal sample parameterised by its own mean
// and the sigma of the underlying normal. This is the form most behaviour
// models want: "sessions average 90 s with heavy tail".
func (r *Source) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return r.LogNormal(mu, sigma)
}

// Poisson returns a Poisson-distributed sample with the given rate lambda.
// For large lambda it uses a normal approximation to stay O(1).
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := r.Norm(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's method.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pareto returns a bounded Pareto-ish heavy-tailed sample with the given
// minimum value and shape alpha (>0). Larger alpha means lighter tail.
func (r *Source) Pareto(xmin, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF at construction; use NewZipf.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (> 0).
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Categorical samples indexes with the given (unnormalised) weights.
type Categorical struct {
	cdf []float64
	src *Source
}

// NewCategorical builds a sampler over weights; non-positive weights get
// probability zero. It panics if all weights are non-positive.
func NewCategorical(src *Source, weights []float64) *Categorical {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w > 0 {
			sum += w
		}
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("rng: NewCategorical with no positive weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Categorical{cdf: cdf, src: src}
}

// Next returns the next sampled index.
func (c *Categorical) Next() int {
	u := c.src.Float64()
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Jitter returns v multiplied by a uniform factor in [1-frac, 1+frac],
// a convenient way to de-synchronise periodic behaviours.
func (r *Source) Jitter(v, frac float64) float64 {
	if frac <= 0 {
		return v
	}
	return v * (1 - frac + 2*frac*r.Float64())
}
