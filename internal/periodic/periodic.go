// Package periodic detects periodic structure in packet and burst timings:
// burst segmentation, dominant update-period estimation (Table 1's "update
// frequency" column) and spike scoring for binned series (Figure 6's 5- and
// 10-minute peaks).
package periodic

import (
	"math"
	"sort"

	"netenergy/internal/stats"
)

// Bursts groups sorted event times (seconds) into bursts: consecutive
// events closer than gap seconds belong to the same burst. It returns the
// start time of each burst. Unsorted input is sorted in a copy.
func Bursts(times []float64, gap float64) []float64 {
	if len(times) == 0 {
		return nil
	}
	ts := make([]float64, len(times))
	copy(ts, times)
	sort.Float64s(ts)
	out := []float64{ts[0]}
	last := ts[0]
	for _, t := range ts[1:] {
		if t-last > gap {
			out = append(out, t)
		}
		last = t
	}
	return out
}

// Intervals returns the successive differences of sorted times.
func Intervals(times []float64) []float64 {
	if len(times) < 2 {
		return nil
	}
	ts := make([]float64, len(times))
	copy(ts, times)
	sort.Float64s(ts)
	out := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i] - ts[i-1]
	}
	return out
}

// Period is a detected dominant period.
type Period struct {
	Seconds  float64 // the dominant inter-burst interval
	Strength float64 // fraction of intervals within ±25% of the period
	Samples  int     // number of intervals examined
}

// IsPeriodic reports whether the detection is confident: at least 5
// intervals with more than half clustered around the dominant value.
func (p Period) IsPeriodic() bool { return p.Samples >= 5 && p.Strength > 0.5 }

// DominantPeriod estimates the dominant inter-burst interval of the given
// burst start times using the median interval as a robust location
// estimate, then measures how tightly intervals cluster around it.
//
// The median tolerates the occasional long gap (app killed overnight, days
// of disuse) that would wreck a mean; the paper's case studies show
// exactly such patterns ("background applications may be forced to close
// for a variety of reasons").
func DominantPeriod(burstTimes []float64) Period {
	iv := Intervals(burstTimes)
	if len(iv) == 0 {
		return Period{}
	}
	med := stats.Median(iv)
	if med <= 0 {
		return Period{Samples: len(iv)}
	}
	in := 0
	for _, v := range iv {
		if v >= 0.75*med && v <= 1.25*med {
			in++
		}
	}
	return Period{
		Seconds:  med,
		Strength: float64(in) / float64(len(iv)),
		Samples:  len(iv),
	}
}

// SpikeScore measures how much series[idx] stands out from its local
// neighbourhood: value divided by the mean of the window values on either
// side (excluding idx itself, and excluding the immediate neighbours so a
// wide peak still scores). A score well above 1 indicates a spike. Returns
// 0 for out-of-range indexes or an empty neighbourhood.
func SpikeScore(series []float64, idx, window int) float64 {
	if idx < 0 || idx >= len(series) || window <= 1 {
		return 0
	}
	var sum float64
	var n int
	for off := 2; off <= window; off++ {
		if i := idx - off; i >= 0 {
			sum += series[i]
			n++
		}
		if i := idx + off; i < len(series) {
			sum += series[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	if mean == 0 {
		if series[idx] > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return series[idx] / mean
}

// AutocorrPeriod estimates the dominant period of a regularly sampled
// series (sample spacing dt seconds) by locating the highest
// autocorrelation peak among candidate lags between minLag and maxLag
// samples. It returns the period in seconds and the correlation at the
// peak; (0, 0) if no positive peak exists.
func AutocorrPeriod(series []float64, dt float64, minLag, maxLag int) (float64, float64) {
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(series) {
		maxLag = len(series) - 1
	}
	if maxLag < minLag {
		return 0, 0
	}
	lags := make([]int, 0, maxLag-minLag+1)
	for l := minLag; l <= maxLag; l++ {
		lags = append(lags, l)
	}
	ac := stats.Autocorrelation(series, lags)
	bestLag, bestVal := 0, 0.0
	for i, v := range ac {
		if v > bestVal {
			bestVal = v
			bestLag = lags[i]
		}
	}
	if bestLag == 0 {
		return 0, 0
	}
	return float64(bestLag) * dt, bestVal
}
