package periodic

import (
	"math"
	"testing"

	"netenergy/internal/rng"
)

func TestBursts(t *testing.T) {
	times := []float64{0, 0.1, 0.2, 10, 10.5, 30}
	b := Bursts(times, 1.0)
	want := []float64{0, 10, 30}
	if len(b) != len(want) {
		t.Fatalf("bursts = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("burst %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestBurstsUnsortedInput(t *testing.T) {
	in := []float64{30, 0, 10, 0.1}
	b := Bursts(in, 1.0)
	if len(b) != 3 || b[0] != 0 {
		t.Errorf("bursts = %v", b)
	}
	// Input must not be mutated.
	if in[0] != 30 {
		t.Error("input mutated")
	}
}

func TestBurstsEmpty(t *testing.T) {
	if Bursts(nil, 1) != nil {
		t.Error("empty input should return nil")
	}
	if got := Bursts([]float64{5}, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("single event = %v", got)
	}
}

func TestIntervals(t *testing.T) {
	iv := Intervals([]float64{10, 0, 30})
	if len(iv) != 2 || iv[0] != 10 || iv[1] != 20 {
		t.Errorf("intervals = %v", iv)
	}
	if Intervals([]float64{1}) != nil {
		t.Error("single point has no intervals")
	}
}

func TestDominantPeriodClean(t *testing.T) {
	// Strict 300 s periodic bursts (a 5-minute poller like Weibo).
	var times []float64
	for i := 0; i < 50; i++ {
		times = append(times, float64(i)*300)
	}
	p := DominantPeriod(times)
	if math.Abs(p.Seconds-300) > 1e-9 {
		t.Errorf("period = %v", p.Seconds)
	}
	if p.Strength != 1 || !p.IsPeriodic() {
		t.Errorf("strength = %v periodic=%v", p.Strength, p.IsPeriodic())
	}
}

func TestDominantPeriodJittered(t *testing.T) {
	src := rng.New(7)
	var times []float64
	tm := 0.0
	for i := 0; i < 100; i++ {
		tm += src.Jitter(600, 0.15) // 10 min ± 15%
		times = append(times, tm)
	}
	p := DominantPeriod(times)
	if p.Seconds < 500 || p.Seconds > 700 {
		t.Errorf("period = %v, want ~600", p.Seconds)
	}
	if !p.IsPeriodic() {
		t.Errorf("jittered periodic traffic not detected: %+v", p)
	}
}

func TestDominantPeriodWithOutliers(t *testing.T) {
	// Periodic 300 s polling with two multi-hour gaps (app killed): the
	// median-based estimate must still find 300 s.
	var times []float64
	tm := 0.0
	for i := 0; i < 60; i++ {
		if i == 20 || i == 40 {
			tm += 4 * 3600
		} else {
			tm += 300
		}
		times = append(times, tm)
	}
	p := DominantPeriod(times)
	if math.Abs(p.Seconds-300) > 1 {
		t.Errorf("period with outliers = %v", p.Seconds)
	}
}

func TestDominantPeriodAperiodic(t *testing.T) {
	src := rng.New(8)
	var times []float64
	tm := 0.0
	for i := 0; i < 100; i++ {
		tm += src.Exp(120) // Poisson arrivals: exponential gaps
		times = append(times, tm)
	}
	p := DominantPeriod(times)
	if p.IsPeriodic() {
		t.Errorf("Poisson arrivals classified periodic: %+v", p)
	}
}

func TestDominantPeriodDegenerate(t *testing.T) {
	if p := DominantPeriod(nil); p.Seconds != 0 || p.IsPeriodic() {
		t.Errorf("nil input: %+v", p)
	}
	// All-identical timestamps: zero median interval.
	p := DominantPeriod([]float64{5, 5, 5, 5, 5, 5, 5})
	if p.IsPeriodic() {
		t.Errorf("zero-interval input classified periodic: %+v", p)
	}
}

func TestSpikeScore(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 10
	}
	series[50] = 100
	if s := SpikeScore(series, 50, 5); s < 8 {
		t.Errorf("spike score = %v", s)
	}
	if s := SpikeScore(series, 20, 5); s < 0.9 || s > 1.1 {
		t.Errorf("flat score = %v", s)
	}
	if SpikeScore(series, -1, 5) != 0 || SpikeScore(series, 1000, 5) != 0 {
		t.Error("out of range should be 0")
	}
	if SpikeScore(series, 50, 1) != 0 {
		t.Error("window<=1 should be 0")
	}
}

func TestSpikeScoreZeroNeighbourhood(t *testing.T) {
	series := make([]float64, 20)
	series[10] = 5
	if s := SpikeScore(series, 10, 3); !math.IsInf(s, 1) {
		t.Errorf("spike over zero floor = %v, want +Inf", s)
	}
	if s := SpikeScore(series, 5, 3); s != 0 {
		t.Errorf("zero over zero = %v", s)
	}
}

func TestAutocorrPeriod(t *testing.T) {
	// 60 s sampling, signal with 600 s period (lag 10).
	series := make([]float64, 500)
	for i := range series {
		if i%10 == 0 {
			series[i] = 1
		}
	}
	period, corr := AutocorrPeriod(series, 60, 5, 50)
	if period != 600 {
		t.Errorf("period = %v, want 600", period)
	}
	if corr < 0.9 {
		t.Errorf("corr = %v", corr)
	}
}

func TestAutocorrPeriodDegenerate(t *testing.T) {
	if p, c := AutocorrPeriod([]float64{1, 2}, 1, 5, 10); p != 0 || c != 0 {
		t.Errorf("degenerate = %v %v", p, c)
	}
	flat := make([]float64, 100)
	if p, _ := AutocorrPeriod(flat, 1, 1, 50); p != 0 {
		t.Errorf("flat series period = %v", p)
	}
}
