// Package report renders analysis results as aligned text tables and CSV,
// one renderer per paper artifact. The text output is what cmd/analyze
// prints and what EXPERIMENTS.md records.
package report

import (
	"fmt"
	"io"
	"strings"

	"netenergy/internal/analysis"
	"netenergy/internal/trace"
	"netenergy/internal/whatif"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes comma-separated values with a header row. Cells containing
// commas or quotes are quoted.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// FmtPeriod renders an update period the way Table 1 does ("5 min", "1 h").
func FmtPeriod(seconds float64, periodic bool) string {
	if seconds <= 0 {
		return "-"
	}
	var s string
	switch {
	case seconds < 90:
		s = fmt.Sprintf("%.0f s", seconds)
	case seconds < 5400:
		s = fmt.Sprintf("%.0f min", seconds/60)
	default:
		s = fmt.Sprintf("%.1f h", seconds/3600)
	}
	if !periodic {
		s += " (aperiodic)"
	}
	return s
}

// TopApps renders Figure 1.
func TopApps(w io.Writer, res analysis.TopAppsResult) error {
	fmt.Fprintln(w, "Figure 1: apps in users' top-10 lists by data consumption")
	rows := make([][]string, 0, len(res.Counts))
	for _, kv := range res.Counts {
		rows = append(rows, []string{kv.Key, fmt.Sprintf("%.0f", kv.Val)})
	}
	return Table(w, []string{"app", "users"}, rows)
}

// HungryApps renders Figure 2.
func HungryApps(w io.Writer, res analysis.HungryAppsResult) error {
	fmt.Fprintln(w, "Figure 2: highest cellular data and network energy usage by app")
	fmt.Fprintln(w, "-- by data --")
	rows := make([][]string, 0, len(res.ByData))
	for _, h := range res.ByData {
		rows = append(rows, []string{h.App, fmt.Sprintf("%.1f MB", float64(h.Bytes)/1e6), fmt.Sprintf("%.0f J", h.Energy), f2(h.JPerMB) + " J/MB"})
	}
	if err := Table(w, []string{"app", "data", "energy", "efficiency"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "-- by energy --")
	rows = rows[:0]
	for _, h := range res.ByEnergy {
		rows = append(rows, []string{h.App, fmt.Sprintf("%.1f MB", float64(h.Bytes)/1e6), fmt.Sprintf("%.0f J", h.Energy), f2(h.JPerMB) + " J/MB"})
	}
	return Table(w, []string{"app", "data", "energy", "efficiency"}, rows)
}

// StateBreakdowns renders Figure 3.
func StateBreakdowns(w io.Writer, sbs []analysis.StateBreakdown) error {
	fmt.Fprintln(w, "Figure 3: fraction of energy in each process state")
	rows := make([][]string, 0, len(sbs))
	for _, sb := range sbs {
		row := []string{sb.App}
		for _, s := range trace.AllStates {
			row = append(row, f3(sb.Fractions[s]))
		}
		row = append(row, f3(sb.BackgroundShare()), fmt.Sprintf("%.0f J", sb.Total))
		rows = append(rows, row)
	}
	headers := []string{"app"}
	for _, s := range trace.AllStates {
		headers = append(headers, s.String())
	}
	headers = append(headers, "bg-share", "total")
	return Table(w, headers, rows)
}

// Timeline renders Figure 4 as a sparkline-style series.
func Timeline(w io.Writer, res analysis.TimelineResult) error {
	fmt.Fprintf(w, "Figure 4: %s traffic around a background transition (device %s)\n", res.App, res.Device)
	fmt.Fprintf(w, "transition at t=%.0f s (grey region begins there)\n", res.Before)
	rows := make([][]string, 0, len(res.Offsets))
	for i := range res.Offsets {
		if res.Bytes[i] == 0 {
			continue
		}
		mark := ""
		if res.Offsets[i] >= res.Before {
			mark = "bg"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", res.Offsets[i]-res.Before),
			fmt.Sprintf("%.0f", res.Bytes[i]),
			mark,
		})
	}
	return Table(w, []string{"t_rel_s", "bytes", "state"}, rows)
}

// Persistence renders Figure 5 as CDF quantiles.
func Persistence(w io.Writer, res analysis.PersistenceCDF) error {
	fmt.Fprintf(w, "Figure 5: duration traffic persists after %s is backgrounded (%d transitions)\n",
		res.App, len(res.Durations))
	rows := [][]string{}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		rows = append(rows, []string{
			fmt.Sprintf("p%.0f", q*100),
			fmt.Sprintf("%.0f s", res.CDF.Quantile(q)),
		})
	}
	if err := Table(w, []string{"quantile", "persistence"}, rows); err != nil {
		return err
	}
	xs, _ := res.CDF.Points(60)
	fmt.Fprintf(w, "persistence spectrum (sorted): %s\n", Spark(xs))
	over := 0
	for _, d := range res.Durations {
		if d > 86400 {
			over++
		}
	}
	_, err := fmt.Fprintf(w, "transitions persisting > 1 day: %d\n", over)
	return err
}

// SinceForeground renders Figure 6.
func SinceForeground(w io.Writer, res analysis.SinceForegroundResult) error {
	fmt.Fprintln(w, "Figure 6: background bytes vs time since leaving foreground")
	fmt.Fprintf(w, "first-minute share: %.1f%%   spike@5min: %.1fx   spike@10min: %.1fx\n",
		100*res.FirstMinute, res.Spike5m, res.Spike10m)
	fmt.Fprintf(w, "first 20 min, 20 s bins: %s\n", Spark(downsample(res.Bytes[:min(len(res.Bytes), 120)], 60)))
	// Print minute-granularity aggregation for readability.
	perMin := map[int]float64{}
	maxMin := 0
	for i, off := range res.Offsets {
		m := int(off / 60)
		perMin[m] += res.Bytes[i]
		if m > maxMin {
			maxMin = m
		}
	}
	rows := [][]string{}
	for m := 0; m <= maxMin && m <= 20; m++ {
		rows = append(rows, []string{fmt.Sprintf("%d min", m), fmt.Sprintf("%.0f", perMin[m])})
	}
	return Table(w, []string{"since fg", "bg bytes"}, rows)
}

// CaseStudies renders Table 1.
func CaseStudies(w io.Writer, rows []analysis.CaseStudy) error {
	fmt.Fprintln(w, "Table 1: case studies (energies in joules)")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			fmt.Sprintf("%.0f", r.JPerDay),
			f1(r.JPerFlow),
			f2(r.MBPerFlow),
			f2(r.UJPerByte),
			FmtPeriod(r.Period.Seconds, r.Period.IsPeriodic()),
			fmt.Sprintf("%d", r.Flows),
		})
	}
	return Table(w, []string{"app", "J/day", "J/flow", "MB/flow", "uJ/B", "update freq", "flows"}, out)
}

// WhatIf renders Table 2.
func WhatIf(w io.Writer, rows []whatif.AppResult, killAfter int) error {
	fmt.Fprintf(w, "Table 2: suppressing background traffic after %d idle days\n", killAfter)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			f1(r.PctBgOnlyDays),
			fmt.Sprintf("%d", r.MaxConsecutiveBgDays),
			f1(r.AvgEnergyReductionPct),
			f2(r.FleetEnergyReductionPct),
			f1(r.DeviceShareOnSuppressedDaysPct),
			fmt.Sprintf("%d", r.Users),
		})
	}
	return Table(w, []string{"app", "A:%bg-only days", "B:max consec", "C:avg %reduction", "fleet %", "device % (supp. days)", "users"}, out)
}

// Headline renders the prose statistics.
func Headline(w io.Writer, h analysis.Headline) error {
	fmt.Fprintln(w, "Headline statistics")
	rows := [][]string{
		{"background energy fraction", f3(h.BackgroundFraction), "0.84"},
		{"perceptible fraction", f3(h.PerceptibleFraction), "0.08"},
		{"service fraction", f3(h.ServiceFraction), "0.32"},
		{"apps >=80% bg bytes in 60s", f3(h.FirstMinute.Fraction), "0.84"},
	}
	for _, pkg := range []string{"com.android.chrome", "org.mozilla.firefox", "com.android.browser"} {
		if v, ok := h.BrowserBgShares[pkg]; ok {
			want := "~0"
			if pkg == "com.android.chrome" {
				want = "0.30"
			}
			rows = append(rows, []string{pkg + " bg energy share", f3(v), want})
		}
	}
	rows = append(rows, []string{"total fleet energy (J)", fmt.Sprintf("%.0f", h.TotalEnergyJ), "-"})
	return Table(w, []string{"metric", "measured", "paper"}, rows)
}

// HostBreakdown renders the per-host attribution of an app's traffic.
func HostBreakdown(w io.Writer, res analysis.HostBreakdownResult) error {
	scope := "all traffic"
	if res.BgOnly {
		scope = "background traffic only"
	}
	fmt.Fprintf(w, "Host attribution for %s (%s)\n", res.App, scope)
	rows := make([][]string, 0, len(res.Hosts))
	for _, h := range res.Hosts {
		rows = append(rows, []string{
			h.Host,
			h.Category.String(),
			fmt.Sprintf("%d", h.Requests),
			fmt.Sprintf("%.2f MB", float64(h.Bytes)/1e6),
			fmt.Sprintf("%.1f J", h.Energy),
		})
	}
	if err := Table(w, []string{"host", "category", "requests", "data", "energy"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "ads+analytics share of attributed energy: %.1f%%  (unattributed: %.2f MB)\n",
		100*res.ThirdPartyShare(), float64(res.UnattributedBytes)/1e6)
	return err
}

// ScreenOff renders the screen-off traffic characterisation.
func ScreenOff(w io.Writer, res analysis.ScreenOffResult) error {
	fmt.Fprintln(w, "Screen-off traffic (extension; cf. Huang et al., IMC'12)")
	fmt.Fprintf(w, "bytes with screen off: %.1f%%   energy with screen off: %.1f%%\n",
		100*res.OffByteFraction(), 100*res.OffEnergyFraction())
	rows := make([][]string, 0, len(res.TopOffApps))
	for _, h := range res.TopOffApps {
		rows = append(rows, []string{
			h.App,
			fmt.Sprintf("%.1f MB", float64(h.Bytes)/1e6),
			fmt.Sprintf("%.0f J", h.Energy),
			f2(h.JPerMB) + " J/MB",
		})
	}
	return Table(w, []string{"app (screen-off energy)", "data", "energy", "efficiency"}, rows)
}

// Retransmissions renders the retransmission-overhead extension.
func Retransmissions(w io.Writer, res analysis.RetransResult) error {
	fmt.Fprintln(w, "TCP retransmission overhead (extension)")
	fmt.Fprintf(w, "streams carried %.1f MB payload, %.2f%% retransmitted (%d out-of-order segments); ~%.0f J wasted\n",
		float64(res.Total.Bytes)/1e6, 100*res.Total.RetransFraction(),
		res.Total.OutOfOrder, res.WastedEnergyJ)
	rows := make([][]string, 0, len(res.PerApp))
	for _, a := range res.PerApp {
		rows = append(rows, []string{
			a.App,
			fmt.Sprintf("%.2f MB", float64(a.RetransBytes)/1e6),
			fmt.Sprintf("%.2f%%", 100*a.Fraction()),
		})
	}
	return Table(w, []string{"app", "retransmitted", "of its bytes"}, rows)
}

// Longitudinal renders the §3.1 weekly trend and the cellular/WiFi
// comparison.
func Longitudinal(w io.Writer, trend analysis.WeeklyTrend, nets analysis.NetworkComparison) error {
	fmt.Fprintln(w, "Longitudinal trends (§3.1)")
	fmt.Fprintf(w, "max week-over-week background energy change: %.0f%%  (paper: up to 60%%)\n",
		100*trend.MaxWeekOverWeekChange)
	rows := make([][]string, 0, len(trend.Weeks))
	for i, v := range trend.Weeks {
		rows = append(rows, []string{
			fmt.Sprintf("week %d", i),
			fmt.Sprintf("%.0f J", v),
		})
	}
	if err := Table(w, []string{"week", "bg energy"}, rows); err != nil {
		return err
	}
	if nets.CellularJ > 0 || nets.WiFiJ > 0 {
		_, err := fmt.Fprintf(w, "cellular: %.0f J over %.0f MB; wifi: %.0f J over %.0f MB (%.0fx energy ratio)\n",
			nets.CellularJ, float64(nets.CellularBytes)/1e6,
			nets.WiFiJ, float64(nets.WiFiBytes)/1e6, nets.Ratio())
		return err
	}
	return nil
}

// DNS renders the resolver-overhead extension.
func DNS(w io.Writer, res analysis.DNSResult) error {
	_, err := fmt.Fprintf(w,
		"DNS overhead (extension): %d lookups, %.2f MB, %.0f J attributed; %.0f%% of lookups woke an idle radio\n",
		res.Lookups, float64(res.Bytes)/1e6, res.Energy, 100*res.WakeFraction())
	return err
}

// Candidates renders the isolation-candidate recommendation list.
func Candidates(w io.Writer, cands []whatif.Candidate, max int) error {
	fmt.Fprintln(w, "Isolation candidates (ZapDroid-style: idle for days, still burning energy)")
	if max > 0 && len(cands) > max {
		cands = cands[:max]
	}
	rows := make([][]string, 0, len(cands))
	for _, c := range cands {
		rows = append(rows, []string{
			c.Device,
			c.App,
			fmt.Sprintf("%d d", c.MaxIdleRun),
			fmt.Sprintf("%.0f J", c.BgEnergyJ),
			fmt.Sprintf("%.1f%%", 100*c.ShareOfDev),
			fmt.Sprintf("%.0f J", c.SavingsEstJ),
		})
	}
	return Table(w, []string{"device", "app", "max idle", "bg energy", "of device", "3d-kill saves"}, rows)
}

// sparkBlocks are the eight block glyphs used by Spark.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Spark renders a series as a unicode sparkline, the quick-look form of a
// figure in terminal output. An empty or all-zero series renders as
// baseline blocks.
func Spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkBlocks)-1))
			if idx >= len(sparkBlocks) {
				idx = len(sparkBlocks) - 1
			}
			if idx == 0 {
				idx = 1 // distinguish nonzero from zero
			}
		}
		out[i] = sparkBlocks[idx]
	}
	return string(out)
}

// downsample reduces a series to at most n points by summing buckets.
func downsample(vals []float64, n int) []float64 {
	if len(vals) <= n || n <= 0 {
		return vals
	}
	out := make([]float64, n)
	for i, v := range vals {
		out[i*n/len(vals)] += v
	}
	return out
}
