package report

import (
	"bytes"
	"strings"
	"testing"

	"netenergy/internal/analysis"
	"netenergy/internal/stats"
	"netenergy/internal/trace"
	"netenergy/internal/whatif"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The value column must start at the same offset in every data row.
	off1 := strings.Index(lines[2], "1")
	off2 := strings.Index(lines[3], "22")
	if off1 != off2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", off1, off2, buf.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{
		{"plain", `has "quotes", and commas`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has \"\"quotes\"\", and commas\"\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFmtPeriod(t *testing.T) {
	cases := []struct {
		sec      float64
		periodic bool
		want     string
	}{
		{0, true, "-"},
		{45, true, "45 s"},
		{300, true, "5 min"},
		{3600, true, "60 min"},
		{7200, true, "2.0 h"},
		{600, false, "10 min (aperiodic)"},
	}
	for _, c := range cases {
		if got := FmtPeriod(c.sec, c.periodic); got != c.want {
			t.Errorf("FmtPeriod(%v, %v) = %q, want %q", c.sec, c.periodic, got, c.want)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer

	if err := TopApps(&buf, analysis.TopAppsResult{
		Counts: []stats.KV{{Key: "com.a", Val: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "com.a") {
		t.Error("TopApps missing app")
	}

	buf.Reset()
	if err := HungryApps(&buf, analysis.HungryAppsResult{
		ByData:   []analysis.HungryApp{{App: "com.big", Bytes: 5e6, Energy: 10, JPerMB: 2}},
		ByEnergy: []analysis.HungryApp{{App: "com.hot", Bytes: 1e6, Energy: 99, JPerMB: 99}},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "com.big") || !strings.Contains(buf.String(), "com.hot") {
		t.Error("HungryApps incomplete")
	}

	buf.Reset()
	if err := StateBreakdowns(&buf, []analysis.StateBreakdown{{
		App: "com.a", Total: 100,
		Fractions: map[trace.ProcState]float64{trace.StateService: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "service") {
		t.Error("StateBreakdowns missing state column")
	}

	buf.Reset()
	if err := Persistence(&buf, analysis.PersistenceCDF{
		App: "com.chrome", Durations: []float64{0, 10, 90000},
		CDF: stats.NewCDF([]float64{0, 10, 90000}),
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "persisting > 1 day: 1") {
		t.Errorf("Persistence missing >1day count:\n%s", buf.String())
	}

	buf.Reset()
	if err := SinceForeground(&buf, analysis.SinceForegroundResult{
		BinWidth: 10, Offsets: []float64{0, 10, 300},
		Bytes: []float64{100, 50, 20}, FirstMinute: 0.8,
		Spike5m: 3, Spike10m: 2, TotalBgBytes: 170,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "80.0%") {
		t.Errorf("SinceForeground missing first-minute share:\n%s", buf.String())
	}

	buf.Reset()
	if err := CaseStudies(&buf, []analysis.CaseStudy{{
		Label: "Weibo", JPerDay: 3500, JPerFlow: 57, MBPerFlow: 0.3, UJPerByte: 190,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Weibo") || !strings.Contains(buf.String(), "3500") {
		t.Error("CaseStudies incomplete")
	}

	buf.Reset()
	if err := WhatIf(&buf, []whatif.AppResult{{
		Label: "Weibo", PctBgOnlyDays: 83, MaxConsecutiveBgDays: 24,
		AvgEnergyReductionPct: 54, Users: 3,
	}}, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "after 3 idle days") {
		t.Error("WhatIf missing threshold")
	}

	buf.Reset()
	if err := Headline(&buf, analysis.Headline{
		BackgroundFraction: 0.84,
		BrowserBgShares:    map[string]float64{"com.android.chrome": 0.3},
		TotalEnergyJ:       1000,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.840") {
		t.Error("Headline missing bg fraction")
	}

	buf.Reset()
	if err := Timeline(&buf, analysis.TimelineResult{
		Device: "u00", App: "com.chrome", Before: 60, BinWidth: 10,
		Offsets: []float64{0, 10, 70}, Bytes: []float64{5, 0, 9},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "u00") || !strings.Contains(out, "bg") {
		t.Errorf("Timeline incomplete:\n%s", out)
	}
}

func TestExtensionRenderers(t *testing.T) {
	var buf bytes.Buffer

	if err := ScreenOff(&buf, analysis.ScreenOffResult{
		OffBytes: 100, OnBytes: 100, OffEnergy: 10, OnEnergy: 5,
		TopOffApps: []analysis.HungryApp{{App: "com.a", Bytes: 100, Energy: 10, JPerMB: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Screen-off") || !strings.Contains(buf.String(), "com.a") {
		t.Errorf("ScreenOff output:\n%s", buf.String())
	}

	buf.Reset()
	if err := Retransmissions(&buf, analysis.RetransResult{
		PerApp:        []analysis.AppRetrans{{App: "com.lossy", Bytes: 1000, RetransBytes: 100}},
		WastedEnergyJ: 42,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "com.lossy") {
		t.Errorf("Retransmissions output:\n%s", buf.String())
	}

	buf.Reset()
	if err := Longitudinal(&buf, analysis.WeeklyTrend{
		Weeks: []float64{10, 16, 12}, MaxWeekOverWeekChange: 0.6,
	}, analysis.NetworkComparison{CellularJ: 100, WiFiJ: 10, CellularBytes: 1e6, WiFiBytes: 1e6}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "60%") || !strings.Contains(out, "10x energy ratio") {
		t.Errorf("Longitudinal output:\n%s", out)
	}

	buf.Reset()
	if err := DNS(&buf, analysis.DNSResult{Lookups: 10, Bytes: 2000, Energy: 120, WakeLookups: 9}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "90% of lookups") {
		t.Errorf("DNS output:\n%s", buf.String())
	}

	buf.Reset()
	if err := Candidates(&buf, []whatif.Candidate{
		{Device: "u00", App: "com.idle", MaxIdleRun: 12, BgEnergyJ: 900, ShareOfDev: 0.2, SavingsEstJ: 700},
		{Device: "u01", App: "com.idle2", MaxIdleRun: 5, BgEnergyJ: 100, ShareOfDev: 0.05, SavingsEstJ: 50},
	}, 1); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "com.idle") || strings.Contains(out, "com.idle2") {
		t.Errorf("Candidates max filter broken:\n%s", out)
	}
}

func TestHostBreakdownRenderer(t *testing.T) {
	var buf bytes.Buffer
	res := analysis.HostBreakdownResult{App: "com.android.chrome", BgOnly: true}
	res.Hosts = []analysis.HostStat{{Host: "pix.adserver.example", Requests: 5, Bytes: 1e6, Energy: 50}}
	if err := HostBreakdown(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pix.adserver.example") ||
		!strings.Contains(buf.String(), "background traffic only") {
		t.Errorf("HostBreakdown output:\n%s", buf.String())
	}
}

func TestSpark(t *testing.T) {
	if Spark(nil) != "" {
		t.Error("empty spark")
	}
	s := Spark([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Errorf("spark = %q", s)
	}
	if []rune(s)[0] != '▁' || []rune(s)[3] != '█' {
		t.Errorf("spark shape = %q", s)
	}
	// Nonzero values never render as the zero glyph.
	tiny := Spark([]float64{1000, 1})
	if []rune(tiny)[1] == '▁' {
		t.Errorf("nonzero rendered as baseline: %q", tiny)
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 1, 1, 1, 1}
	out := downsample(in, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum != 6 {
		t.Errorf("mass not conserved: %v", out)
	}
	if got := downsample(in, 10); len(got) != 6 {
		t.Error("short series should pass through")
	}
}
