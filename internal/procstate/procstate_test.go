package procstate

import (
	"testing"

	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

const us = trace.Timestamp(1_000_000) // one second in timestamp units

func buildTracker() *Tracker {
	t := NewTracker()
	// App 1: launched, foregrounded, backgrounded, serviced, foregrounded again.
	t.Observe(1, 10*us, trace.StateForeground)
	t.Observe(1, 100*us, trace.StateBackground)
	t.Observe(1, 200*us, trace.StateService)
	t.Observe(1, 300*us, trace.StateForeground)
	t.Observe(1, 400*us, trace.StateBackground)
	// App 2: pure background service.
	t.Observe(2, 50*us, trace.StateService)
	return t
}

func TestStateAt(t *testing.T) {
	tr := buildTracker()
	cases := []struct {
		ts   trace.Timestamp
		want trace.ProcState
	}{
		{5 * us, trace.StateUnknown},
		{10 * us, trace.StateForeground},
		{99 * us, trace.StateForeground},
		{100 * us, trace.StateBackground},
		{250 * us, trace.StateService},
		{1000 * us, trace.StateBackground},
	}
	for _, tc := range cases {
		if got := tr.StateAt(1, tc.ts); got != tc.want {
			t.Errorf("StateAt(1, %d) = %v, want %v", tc.ts, got, tc.want)
		}
	}
	if got := tr.StateAt(99, 500*us); got != trace.StateUnknown {
		t.Errorf("unknown app state = %v", got)
	}
}

func TestTimeline(t *testing.T) {
	tr := buildTracker()
	tl := tr.Timeline(1, 500*us)
	want := []Interval{
		{10 * us, 100 * us, trace.StateForeground},
		{100 * us, 200 * us, trace.StateBackground},
		{200 * us, 300 * us, trace.StateService},
		{300 * us, 400 * us, trace.StateForeground},
		{400 * us, 500 * us, trace.StateBackground},
	}
	if len(tl) != len(want) {
		t.Fatalf("timeline %v", tl)
	}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, tl[i], want[i])
		}
	}
	if tr.Timeline(42, 100*us) != nil {
		t.Error("unknown app should have nil timeline")
	}
}

func TestTimelineMergesSameState(t *testing.T) {
	tr := NewTracker()
	tr.Observe(1, 10*us, trace.StateService)
	tr.Observe(1, 20*us, trace.StateService) // duplicate
	tr.Observe(1, 30*us, trace.StateBackground)
	tl := tr.Timeline(1, 40*us)
	if len(tl) != 2 {
		t.Fatalf("timeline = %v", tl)
	}
	if tl[0].End != 30*us {
		t.Errorf("merged interval end = %v", tl[0].End)
	}
}

func TestBackgroundTransitions(t *testing.T) {
	tr := buildTracker()
	trans := tr.BackgroundTransitions(1)
	if len(trans) != 2 {
		t.Fatalf("transitions = %v", trans)
	}
	if trans[0].TS != 100*us || trans[1].TS != 400*us {
		t.Errorf("transition times = %v", trans)
	}
	if len(tr.BackgroundTransitions(2)) != 0 {
		t.Error("service-only app should have no fg->bg transitions")
	}
}

func TestLastForegroundEnd(t *testing.T) {
	tr := buildTracker()
	// At t=250, last foreground ended at t=100.
	ts, ok := tr.LastForegroundEnd(1, 250*us)
	if !ok || ts != 100*us {
		t.Errorf("LastForegroundEnd(250) = %v %v", ts, ok)
	}
	// While foreground: clamps to query time.
	ts, ok = tr.LastForegroundEnd(1, 350*us)
	if !ok || ts != 350*us {
		t.Errorf("LastForegroundEnd(350) = %v %v", ts, ok)
	}
	// Before any foreground.
	if _, ok := tr.LastForegroundEnd(2, 500*us); ok {
		t.Error("app 2 never foregrounded")
	}
	if _, ok := tr.LastForegroundEnd(1, 5*us); ok {
		t.Error("before first observation")
	}
}

func TestTimeInState(t *testing.T) {
	tr := buildTracker()
	m := tr.TimeInState(1, 0, 500*us)
	if m[trace.StateForeground] != 190 { // 90 + 100 seconds
		t.Errorf("foreground time = %v", m[trace.StateForeground])
	}
	if m[trace.StateBackground] != 200 { // 100 + 100
		t.Errorf("background time = %v", m[trace.StateBackground])
	}
	if m[trace.StateService] != 100 {
		t.Errorf("service time = %v", m[trace.StateService])
	}
	// Clamped window.
	m2 := tr.TimeInState(1, 150*us, 250*us)
	if m2[trace.StateBackground] != 50 || m2[trace.StateService] != 50 {
		t.Errorf("clamped = %v", m2)
	}
}

func TestOutOfOrderObservations(t *testing.T) {
	tr := NewTracker()
	tr.Observe(1, 100*us, trace.StateBackground)
	tr.Observe(1, 10*us, trace.StateForeground) // late arrival
	if got := tr.StateAt(1, 50*us); got != trace.StateForeground {
		t.Errorf("StateAt after out-of-order = %v", got)
	}
	if got := tr.StateAt(1, 150*us); got != trace.StateBackground {
		t.Errorf("StateAt(150) = %v", got)
	}
}

func TestApps(t *testing.T) {
	tr := buildTracker()
	apps := tr.Apps()
	if len(apps) != 2 || apps[0] != 1 || apps[1] != 2 {
		t.Errorf("Apps = %v", apps)
	}
}

func TestForegroundDays(t *testing.T) {
	tr := NewTracker()
	day := trace.Timestamp(86400 * 1_000_000)
	tr.Observe(1, 0, trace.StateForeground)
	tr.Observe(1, 10*us, trace.StateBackground)
	// Foreground again spanning a day boundary: day 2 into day 3.
	tr.Observe(1, 2*day+10*us, trace.StateForeground)
	tr.Observe(1, 3*day+10*us, trace.StateBackground)
	days := tr.ForegroundDays(1)
	for _, d := range []int{0, 2, 3} {
		if !days[d] {
			t.Errorf("day %d missing: %v", d, days)
		}
	}
	if days[1] {
		t.Error("day 1 should have no foreground")
	}
}

func TestFromTrace(t *testing.T) {
	dt := &trace.DeviceTrace{Device: "d", Start: 0, Apps: trace.NewAppTable()}
	dt.Records = []trace.Record{
		{Type: trace.RecProcState, TS: 10 * us, App: 1, State: trace.StateForeground},
		{Type: trace.RecPacket, TS: 20 * us, App: 1, State: trace.StateForeground},
		{Type: trace.RecProcState, TS: 30 * us, App: 1, State: trace.StateBackground},
	}
	tr := FromTrace(dt)
	if tr.StateAt(1, 25*us) != trace.StateForeground {
		t.Error("FromTrace missed an event")
	}
	if got := len(tr.BackgroundTransitions(1)); got != 1 {
		t.Errorf("transitions = %d", got)
	}
}

func TestTimelineTilesAndMatchesStateAt(t *testing.T) {
	// Property: timeline intervals are contiguous, non-overlapping, cover
	// [firstEvent, end), and agree with StateAt at every probe point.
	src := rng.New(33)
	for trial := 0; trial < 30; trial++ {
		tr := NewTracker()
		n := 2 + src.Intn(40)
		ts := trace.Timestamp(0)
		var first trace.Timestamp = -1
		for i := 0; i < n; i++ {
			ts += trace.Timestamp(1+src.Intn(1000)) * us
			if first < 0 {
				first = ts
			}
			tr.Observe(1, ts, trace.ProcState(1+src.Intn(5)))
		}
		end := ts + 1000*us
		tl := tr.Timeline(1, end)
		if len(tl) == 0 {
			t.Fatal("empty timeline")
		}
		if tl[0].Start != first || tl[len(tl)-1].End != end {
			t.Fatalf("timeline bounds [%d,%d) want [%d,%d)", tl[0].Start, tl[len(tl)-1].End, first, end)
		}
		for i := 1; i < len(tl); i++ {
			if tl[i].Start != tl[i-1].End {
				t.Fatalf("gap/overlap between %v and %v", tl[i-1], tl[i])
			}
			if tl[i].State == tl[i-1].State {
				t.Fatalf("unmerged equal states at %d", i)
			}
		}
		for probe := 0; probe < 50; probe++ {
			p := first + trace.Timestamp(src.Intn(int(end-first)))
			want := tr.StateAt(1, p)
			var got trace.ProcState
			for _, iv := range tl {
				if iv.Start <= p && p < iv.End {
					got = iv.State
					break
				}
			}
			if got != want {
				t.Fatalf("probe %d: timeline %v vs StateAt %v", p, got, want)
			}
		}
	}
}
