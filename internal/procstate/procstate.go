// Package procstate reconstructs per-app Android process-state timelines
// from the collector's RecProcState events, and answers the queries the
// study analyses need: "what state was app X in at time T", "when did it
// last leave the foreground", and "list every foreground→background
// transition".
//
// The five states and their grouping into foreground (foreground, visible)
// and background (perceptible, service, background) follow the paper's §4
// definition exactly.
package procstate

import (
	"sort"

	"netenergy/internal/trace"
)

// event is one observed state change.
type event struct {
	ts    trace.Timestamp
	state trace.ProcState
}

// Tracker accumulates process-state events for all apps on one device and
// serves point-in-time and transition queries. Events should be fed in
// timestamp order (the trace format guarantees this for generated traces);
// out-of-order observations are tolerated by a final sort.
type Tracker struct {
	events map[uint32][]event
	sorted bool
}

// NewTracker returns an empty Tracker.
func NewTracker() *Tracker {
	return &Tracker{events: make(map[uint32][]event), sorted: true}
}

// Observe records that app was in state s from ts onward.
func (t *Tracker) Observe(app uint32, ts trace.Timestamp, s trace.ProcState) {
	evs := t.events[app]
	if n := len(evs); n > 0 && evs[n-1].ts > ts {
		t.sorted = false
	}
	t.events[app] = append(evs, event{ts, s})
}

// FromTrace builds a Tracker from all RecProcState records in dt.
func FromTrace(dt *trace.DeviceTrace) *Tracker {
	t := NewTracker()
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type == trace.RecProcState {
			t.Observe(r.App, r.TS, r.State)
		}
	}
	t.ensureSorted()
	return t
}

func (t *Tracker) ensureSorted() {
	if t.sorted {
		return
	}
	for app, evs := range t.events {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
		t.events[app] = evs
	}
	t.sorted = true
}

// Apps returns the IDs of all apps with at least one observation.
func (t *Tracker) Apps() []uint32 {
	out := make([]uint32, 0, len(t.events))
	for app := range t.events {
		out = append(out, app)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StateAt returns the app's state at ts: the state set by the latest event
// at or before ts. Before the first observation it returns StateUnknown.
func (t *Tracker) StateAt(app uint32, ts trace.Timestamp) trace.ProcState {
	t.ensureSorted()
	evs := t.events[app]
	// Index of first event strictly after ts.
	i := sort.Search(len(evs), func(i int) bool { return evs[i].ts > ts })
	if i == 0 {
		return trace.StateUnknown
	}
	return evs[i-1].state
}

// Interval is a half-open [Start, End) span during which an app held State.
type Interval struct {
	Start, End trace.Timestamp
	State      trace.ProcState
}

// Timeline returns the app's state intervals. The final interval is closed
// at end (pass the trace's end timestamp). Consecutive events with the same
// state are merged.
func (t *Tracker) Timeline(app uint32, end trace.Timestamp) []Interval {
	t.ensureSorted()
	evs := t.events[app]
	if len(evs) == 0 {
		return nil
	}
	var out []Interval
	cur := Interval{Start: evs[0].ts, State: evs[0].state}
	for _, e := range evs[1:] {
		if e.state == cur.State {
			continue
		}
		cur.End = e.ts
		if cur.End > cur.Start {
			out = append(out, cur)
		}
		cur = Interval{Start: e.ts, State: e.state}
	}
	cur.End = end
	if cur.End > cur.Start {
		out = append(out, cur)
	}
	return out
}

// Transition is one foreground→background transition of an app.
type Transition struct {
	App uint32
	TS  trace.Timestamp // moment the app left the foreground group
}

// BackgroundTransitions returns every time the app moved from a foreground
// state (foreground/visible) to a background state, in time order. These
// are the §4.1 "app sent to the background" instants Figures 5 and 6 are
// built from.
func (t *Tracker) BackgroundTransitions(app uint32) []Transition {
	t.ensureSorted()
	evs := t.events[app]
	var out []Transition
	for i := 1; i < len(evs); i++ {
		if evs[i-1].state.IsForeground() && evs[i].state.IsBackground() {
			out = append(out, Transition{App: app, TS: evs[i].ts})
		}
	}
	return out
}

// LastForegroundEnd returns the most recent time at or before ts when the
// app was last in a foreground state (i.e. the end of its latest foreground
// interval). ok is false if the app has not been in the foreground by ts.
func (t *Tracker) LastForegroundEnd(app uint32, ts trace.Timestamp) (trace.Timestamp, bool) {
	t.ensureSorted()
	evs := t.events[app]
	i := sort.Search(len(evs), func(i int) bool { return evs[i].ts > ts })
	// Walk backwards to the latest fg->non-fg boundary.
	for j := i - 1; j >= 0; j-- {
		if evs[j].state.IsForeground() {
			if j+1 < len(evs) {
				// Foreground ended when the next event fired (clamped to ts).
				end := evs[j+1].ts
				if end > ts {
					end = ts
				}
				return end, true
			}
			return ts, true // still foreground at ts
		}
	}
	return 0, false
}

// TimeInState sums, per state, the duration the app spent in each state
// over [start, end).
func (t *Tracker) TimeInState(app uint32, start, end trace.Timestamp) map[trace.ProcState]float64 {
	out := make(map[trace.ProcState]float64)
	for _, iv := range t.Timeline(app, end) {
		s, e := iv.Start, iv.End
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e > s {
			out[iv.State] += e.Sub(s)
		}
	}
	return out
}

// ForegroundDays returns the set of day indices (Timestamp.Day) on which
// the app was in a foreground state at any point.
func (t *Tracker) ForegroundDays(app uint32) map[int]bool {
	t.ensureSorted()
	days := make(map[int]bool)
	evs := t.events[app]
	for i, e := range evs {
		if !e.state.IsForeground() {
			continue
		}
		end := e.ts
		if i+1 < len(evs) {
			end = evs[i+1].ts
		}
		for d := e.ts.Day(); d <= end.Day(); d++ {
			days[d] = true
		}
	}
	return days
}
