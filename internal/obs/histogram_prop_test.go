package obs

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomSnapshot builds a snapshot over the given bounds with random bucket
// counts and a sum consistent with "some observations happened".
func randomSnapshot(rng *rand.Rand, bounds []float64) HistogramSnapshot {
	s := HistogramSnapshot{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
	for i := range s.Counts {
		s.Counts[i] = rng.Int63n(1000)
	}
	s.Sum = float64(rng.Int63n(1_000_000)) / 16 // exactly representable
	return s
}

func cloneSnapshot(s HistogramSnapshot) HistogramSnapshot {
	c := s
	c.Counts = append([]int64(nil), s.Counts...)
	return c
}

// TestHistogramMergeCommutative: a+b == b+a for randomized snapshots — the
// property that makes shard-merged fleet histograms independent of shard
// order.
func TestHistogramMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(20151028))
	bounds := DurationBuckets()
	for trial := 0; trial < 200; trial++ {
		a := randomSnapshot(rng, bounds)
		b := randomSnapshot(rng, bounds)
		ab := cloneSnapshot(a)
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		ba := cloneSnapshot(b)
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab.Counts, ba.Counts) || ab.Sum != ba.Sum {
			t.Fatalf("trial %d: merge not commutative:\n a+b=%+v\n b+a=%+v", trial, ab, ba)
		}
	}
}

// TestHistogramMergeAssociative: (a+b)+c == a+(b+c). Sums are chosen from a
// dyadic grid so float addition is exact and the comparison is bit-for-bit.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := SizeBuckets()
	for trial := 0; trial < 200; trial++ {
		a := randomSnapshot(rng, bounds)
		b := randomSnapshot(rng, bounds)
		c := randomSnapshot(rng, bounds)

		left := cloneSnapshot(a)
		if err := left.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := left.Merge(c); err != nil {
			t.Fatal(err)
		}

		bc := cloneSnapshot(b)
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		right := cloneSnapshot(a)
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(left.Counts, right.Counts) || left.Sum != right.Sum {
			t.Fatalf("trial %d: merge not associative:\n (a+b)+c=%+v\n a+(b+c)=%+v", trial, left, right)
		}
	}
}

// TestHistogramMergeIdentity: merging an all-zero snapshot changes nothing.
func TestHistogramMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := []float64{1, 10, 100}
	a := randomSnapshot(rng, bounds)
	zero := HistogramSnapshot{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
	got := cloneSnapshot(a)
	if err := got.Merge(zero); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counts, a.Counts) || got.Sum != a.Sum {
		t.Fatalf("identity merge changed the snapshot: %+v vs %+v", got, a)
	}
}

// TestHistogramMergeRejectsLayoutMismatch: differing bucket layouts must
// refuse to merge rather than silently mis-bin.
func TestHistogramMergeRejectsLayoutMismatch(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: make([]int64, 3)}
	b := HistogramSnapshot{Bounds: []float64{1, 3}, Counts: make([]int64, 3)}
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error on differing bounds")
	}
	c := HistogramSnapshot{Bounds: []float64{1}, Counts: make([]int64, 2)}
	if err := a.Merge(c); err == nil {
		t.Fatal("expected error on differing bucket count")
	}
}

// TestMergeMatchesSingleHistogram: two histograms observing disjoint halves
// of a value stream, merged, equal one histogram observing the whole stream.
func TestMergeMatchesSingleHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := DurationBuckets()
	whole := New().Histogram("w", "", bounds)
	ha := New().Histogram("a", "", bounds)
	hb := New().Histogram("b", "", bounds)
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.Float64()*20 - 14) // spans the bucket range
		whole.Observe(v)
		if i%2 == 0 {
			ha.Observe(v)
		} else {
			hb.Observe(v)
		}
	}
	merged := ha.Snapshot()
	if err := merged.Merge(hb.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := whole.Snapshot()
	if !reflect.DeepEqual(merged.Counts, want.Counts) {
		t.Fatalf("merged counts %v != whole %v", merged.Counts, want.Counts)
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-9*math.Abs(want.Sum) {
		t.Fatalf("merged sum %v != whole %v", merged.Sum, want.Sum)
	}
}
