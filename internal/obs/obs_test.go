package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("depth", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.GaugeFunc("computed", "", func() float64 { return 2.5 })

	snap := r.Snapshot()
	if snap.Counters["x_total"] != 5 || snap.Gauges["depth"] != 4 || snap.Gauges["computed"] != 2.5 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestRegisterKindClashPanics(t *testing.T) {
	r := New()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramObserveBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // <=0.01 x2 (bounds are inclusive), <=0.1, <=1, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count() != 5 || h.Count() != 5 {
		t.Fatalf("count = %d/%d, want 5", s.Count(), h.Count())
	}
	if got, want := s.Sum, 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all land in the (1,2] bucket
	}
	q := h.Snapshot().Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("median %v outside its bucket", q)
	}
	if got := (HistogramSnapshot{}).Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestWriteTextAndParseRoundtrip(t *testing.T) {
	r := New()
	r.Counter("ingest_records_total", "records accepted").Add(123)
	r.Counter(`ingest_errors_total{kind="crc"}`, "errors").Add(7)
	r.Gauge("ingest_conns_active", "open connections").Set(3)
	r.GaugeFunc("ingest_uptime_seconds", "uptime", func() float64 { return 1.5 })
	h := r.Histogram("ingest_apply_latency_seconds", "queue latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE ingest_records_total counter",
		"ingest_records_total 123",
		`ingest_errors_total{kind="crc"} 7`,
		"# TYPE ingest_conns_active gauge",
		"ingest_conns_active 3",
		"ingest_uptime_seconds 1.5",
		"# TYPE ingest_apply_latency_seconds histogram",
		`ingest_apply_latency_seconds_bucket{le="0.001"} 1`,
		`ingest_apply_latency_seconds_bucket{le="+Inf"} 2`,
		"ingest_apply_latency_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	parsed, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["ingest_records_total"] != 123 {
		t.Fatalf("parsed records = %v", parsed["ingest_records_total"])
	}
	if parsed[`ingest_errors_total{kind="crc"}`] != 7 {
		t.Fatalf("parsed labeled counter = %v", parsed[`ingest_errors_total{kind="crc"}`])
	}
	if parsed[`ingest_apply_latency_seconds_bucket{le="+Inf"}`] != 2 {
		t.Fatalf("parsed +Inf bucket = %v", parsed[`ingest_apply_latency_seconds_bucket{le="+Inf"}`])
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", DurationBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestEventLogRingAndLevels(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		lv := LevelInfo
		if i%3 == 0 {
			lv = LevelWarn
		}
		l.Logf(lv, "event %d", i)
	}
	if got := l.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	recent := l.Recent(0, LevelDebug)
	if len(recent) != 4 {
		t.Fatalf("retained %d, want 4", len(recent))
	}
	if recent[0].Seq != 6 || recent[3].Seq != 9 {
		t.Fatalf("ring window wrong: %+v", recent)
	}
	if recent[3].Msg != "event 9" {
		t.Fatalf("newest msg = %q", recent[3].Msg)
	}
	warns := l.Recent(0, LevelWarn)
	for _, ev := range warns {
		if ev.Level < LevelWarn {
			t.Fatalf("level filter leaked %+v", ev)
		}
	}
	if l.Count(LevelWarn) != 4 { // events 0,3,6,9
		t.Fatalf("warn count = %d, want 4", l.Count(LevelWarn))
	}
	if got := l.Recent(2, LevelDebug); len(got) != 2 || got[1].Seq != 9 {
		t.Fatalf("max trim wrong: %+v", got)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{"": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError, "bogus": LevelDebug}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRegisterEventMetrics(t *testing.T) {
	r := New()
	l := NewEventLog(8)
	l.RegisterEventMetrics(r, "ingest_events_total", "events by level")
	l.Logf(LevelError, "boom")
	l.Logf(LevelError, "boom again")
	snap := r.Snapshot()
	if got := snap.Gauges[`ingest_events_total{level="error"}`]; got != 2 {
		t.Fatalf("error total = %v, want 2", got)
	}
}
