package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Level is an event severity.
type Level uint8

// Severities, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	numLevels
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// ParseLevel maps a level name to its Level ("" and unknown names mean
// LevelDebug: show everything).
func ParseLevel(s string) Level {
	switch s {
	case "info":
		return LevelInfo
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelDebug
	}
}

// MarshalJSON renders the level as its name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON accepts a level name (round-trips MarshalJSON).
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*l = ParseLevel(s)
	return nil
}

// Event is one structured log entry.
type Event struct {
	// Seq is the global, monotonically-increasing event number; gaps in a
	// Recent listing mean older events were overwritten in the ring.
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"time_unix_nano"`
	Level    Level  `json:"level"`
	Msg      string `json:"msg"`
}

// EventLog is a bounded in-memory structured log: the newest capacity
// events are retained in a ring for the admin /events endpoint, and
// per-level totals are kept forever. Event emission formats a message and
// takes a mutex — it is for connection- and subsystem-level happenings
// (severs, checkpoint saves, recoveries), never for per-record paths.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	seq  uint64 // total events ever appended

	counts [numLevels]Counter
}

// NewEventLog returns a log retaining the newest capacity events (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, 0, capacity)}
}

// Logf appends a formatted event.
func (l *EventLog) Logf(lv Level, format string, args ...any) {
	if lv >= numLevels {
		lv = LevelError
	}
	ev := Event{UnixNano: time.Now().UnixNano(), Level: lv, Msg: fmt.Sprintf(format, args...)}
	l.counts[lv].Inc()
	l.mu.Lock()
	ev.Seq = l.seq
	l.seq++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[int(ev.Seq)%cap(l.ring)] = ev
	}
	l.mu.Unlock()
}

// Count returns how many events of severity lv were ever logged (including
// ones the ring has since dropped).
func (l *EventLog) Count(lv Level) int64 {
	if lv >= numLevels {
		return 0
	}
	return l.counts[lv].Load()
}

// Total returns the number of events ever logged.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Recent returns up to max of the newest retained events at or above
// severity min, oldest first. max <= 0 means everything retained.
func (l *EventLog) Recent(max int, min Level) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	out := make([]Event, 0, n)
	start := int(l.seq) - n // seq of the oldest retained event
	for i := 0; i < n; i++ {
		ev := l.ring[(start+i)%cap(l.ring)]
		if ev.Level >= min {
			out = append(out, ev)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// RegisterEventMetrics exposes the log's per-level totals on a registry as
// `<name>{level="warn"}`-style counters computed at scrape time.
func (l *EventLog) RegisterEventMetrics(reg *Registry, name, help string) {
	for lv := LevelDebug; lv < numLevels; lv++ {
		lv := lv
		reg.GaugeFunc(fmt.Sprintf("%s{level=%q}", name, lv.String()), help,
			func() float64 { return float64(l.Count(lv)) })
	}
}
