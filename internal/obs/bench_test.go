package obs

import (
	"testing"
)

// TestObserveAllocFree is the zero-allocation instrumentation policy,
// enforced: counter adds and histogram observations on the hot path must
// never allocate. (DESIGN.md documents the policy; this test is the gate.)
func TestObserveAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(9) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	var v float64
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 1e-5 }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("h", "", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := New().Histogram("h", "", DurationBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-5
		for pb.Next() {
			h.Observe(v)
		}
	})
}
