package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text exposition into a flat map from the
// sample name (labels included, exactly as printed) to its value. It is the
// consumer side of WriteText, used by fleetsim to reconcile the server's
// /metrics scrape against its own sent-record counters, and by tests.
// Unparseable lines are skipped — a scrape is best-effort input.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the name (which may
		// contain spaces inside label values) is everything before it.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		name := strings.TrimSpace(line[:i])
		val, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[name] = val
	}
	return out, sc.Err()
}
