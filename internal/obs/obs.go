// Package obs is the repo's dependency-free observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, plus a
// bounded structured event log. The ingest daemon, the batch analyzer and
// the fleet load generator all publish through it; the admin server renders
// a registry as Prometheus text ("GET /metrics") and the CLIs dump it as
// JSON (-stats-json).
//
// The design constraint, stated once here and enforced by tests: observing
// a metric on a hot path (a per-record counter add, a per-batch histogram
// observation) must not allocate and must not take a lock. Every metric is
// a fixed set of atomics allocated at registration time; registration may
// lock and allocate, observation never does. The paper's contribution is
// careful measurement — the instrumentation of our own pipeline must not
// perturb what it measures.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing metric. The zero value is unusable;
// obtain counters from a Registry so they are exported.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//repolint:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic; this is not
// enforced so restore paths can seed recovered totals in one call).
//
//repolint:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value (queue depth, active conns,
// generation numbers, unix timestamps).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//repolint:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
//
//repolint:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// atomicF64 is a float64 updated via CAS on its bit pattern.
type atomicF64 struct {
	bits atomic.Uint64
}

//repolint:noalloc
func (a *atomicF64) Add(v float64) {
	for {
		old := a.bits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

func (a *atomicF64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// limits in ascending order; one extra implicit +Inf bucket catches the
// rest. Observe is lock-free and allocation-free: one atomic add on the
// bucket, one CAS loop on the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomicF64
}

// Observe records one value.
//
//repolint:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	// Linear scan: bucket counts are small (<= ~20) and the branch
	// predictor beats binary search at this size.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot returns a consistent-enough copy for export. (Individual bucket
// reads are atomic; the set is not a single linearization point, which is
// the standard and acceptable trade for lock-free observation.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after registration; safe to share
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the exportable, mergeable form of a Histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
	Sum    float64   `json:"sum"`
}

// Count returns the total observation count.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge adds other into s. Bucket layouts must be identical — snapshots of
// the same registered metric always are — which makes Merge associative and
// commutative (integer bucket adds; the float sum commutes bit-exactly
// because both operand orders add the same two values).
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) || len(s.Counts) != len(other.Counts) {
		return fmt.Errorf("obs: merge: bucket layout mismatch (%d vs %d bounds)", len(s.Bounds), len(other.Bounds))
	}
	for i, b := range s.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("obs: merge: bound %d differs (%g vs %g)", i, b, other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	return nil
}

// Quantile estimates the q-th quantile (0..1) assuming a uniform
// distribution within each bucket. The +Inf bucket reports its lower bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			return lo // +Inf bucket: best effort
		}
		hi := s.Bounds[i]
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + frac*(hi-lo)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n bounds starting at start, multiplying by factor:
// the standard latency/size bucket generator.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DurationBuckets covers 10µs .. ~80s — wide enough for a frame decode and
// a checkpoint fsync on the same scale.
func DurationBuckets() []float64 { return ExpBuckets(10e-6, 4, 12) }

// SizeBuckets covers 1 .. ~1M (records, bytes, batch sizes).
func SizeBuckets() []float64 { return ExpBuckets(1, 4, 11) }

// metricKind tags what a registered name points at.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name string // full name, possibly with a {label="x"} suffix
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry is a named collection of metrics. Registration is idempotent:
// asking for an existing name of the same kind returns the same metric
// (differing kinds panic — that is a programming error, not input).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*metric
	order  []*metric
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byName[name]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns the existing) counter under name. The name
// may carry a fixed label set: `ingest_errors_total{kind="crc"}`.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time — for
// values that already live elsewhere (queue depths, map sizes, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc)
	m.gaugeFn = fn
}

// Histogram registers (or returns the existing) histogram under name with
// the given ascending bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, kindHistogram)
	if m.hist == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q: bounds not ascending", name))
			}
		}
		m.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return m.hist
}

// snapshotMetrics returns a stable-ordered copy of the metric list.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	ms := append([]*metric(nil), r.order...)
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

// Snapshot is the JSON-friendly dump of a whole registry (-stats-json).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name] = m.counter.Load()
		case kindGauge:
			s.Gauges[m.name] = float64(m.gauge.Load())
		case kindGaugeFunc:
			s.Gauges[m.name] = m.gaugeFn()
		case kindHistogram:
			s.Histograms[m.name] = m.hist.Snapshot()
		}
	}
	return s
}

// splitName separates a metric name into its family and an optional label
// body: `a_total{kind="crc"}` -> ("a_total", `kind="crc"`).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// formatFloat renders a float the way Prometheus text expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4), metrics sorted by name, HELP/TYPE emitted once per
// family.
func (r *Registry) WriteText(w io.Writer) error {
	seen := map[string]bool{}
	for _, m := range r.snapshotMetrics() {
		family, labels := splitName(m.name)
		if !seen[family] {
			seen[family] = true
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, typ); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Load())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
		case kindHistogram:
			err = writeHistogramText(w, family, labels, m.hist.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogramText(w io.Writer, family, labels string, s HistogramSnapshot) error {
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`{%s,le="%s"}`, labels, le)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLe(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, suffix, formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, suffix, cum)
	return err
}
